//! Differential suite: `SimilarityIndex::build` against the brute-force
//! all-pairs reference index, on seeded dirty vocabularies.
//!
//! The oracle (`dlearn_test_support::index_oracle::ReferenceIndex`) scores
//! every (left, right) pair — no blocking, no length filter, no top-k early
//! exit, strictly serial. Equality with the production build therefore
//! proves, per seeded case:
//!
//! * the **length filter** never skips a pair whose true score reaches the
//!   threshold (the `max_score_bound` inequality holds in floating point);
//! * the **top-k early exit** never abandons a candidate that belongs in
//!   the final top-k under the (score desc, value asc) tie-break;
//! * **blocking is complete on these vocabularies**: the generators corrupt
//!   at most one token per variant and keep leading trigrams intact, so
//!   every pair that can reach the threshold shares a blocking key (see
//!   `dlearn_test_support::vocab`);
//! * the **parallel merge** is deterministic — thread counts 1/2/8 build
//!   the same index, which the dedicated sweep below pins case by case.
//!
//! This is the standing parity mechanism for index construction: future
//! changes to the alignment loop only have to keep these properties, not
//! reproduce any particular candidate order.

use dlearn_similarity::{IndexConfig, SimilarityIndex, SimilarityOperator};
use dlearn_test_support::index_oracle::ReferenceIndex;
use dlearn_test_support::vocab::{dirty_vocabulary, DirtyVocabulary, VocabConfig};

/// (threshold, top_k) grid crossed with the seeds below: thresholds span
/// lenient to strict, top_k spans the paper's `km` sweep (2, 5, 10) plus
/// the best-match case `km = 1`.
const OPERATOR_GRID: &[(f64, usize)] = &[(0.65, 5), (0.7, 2), (0.75, 1), (0.8, 10)];

fn check_case(vocab: &DirtyVocabulary, seed: u64, threshold: f64, top_k: usize) {
    let index_config = IndexConfig {
        top_k,
        operator: SimilarityOperator::with_threshold(threshold),
        threads: 1,
        ..IndexConfig::default()
    };
    let oracle = ReferenceIndex::build(&vocab.left, &vocab.right, &index_config);
    let built = SimilarityIndex::build(&vocab.left, &vocab.right, &index_config);
    let built_view = ReferenceIndex::view_of(&built);
    assert_eq!(
        oracle, built_view,
        "seed {seed}, threshold {threshold}, top_k {top_k}: \
         built index diverged from the all-pairs oracle"
    );
}

/// ~300 seeded vocabularies: 75 seeds × the 4-point operator grid, plus a
/// smaller-vocabulary sweep (more noise relative to signal) below. The
/// vocabulary depends only on (config, seed), so it is generated once per
/// seed and shared across the operator grid.
#[test]
fn built_index_equals_all_pairs_oracle_on_seeded_vocabularies() {
    let config = VocabConfig::default();
    for seed in 0..75u64 {
        let vocab = dirty_vocabulary(&config, seed);
        for &(threshold, top_k) in OPERATOR_GRID {
            check_case(&vocab, seed, threshold, top_k);
        }
    }
}

#[test]
fn built_index_equals_oracle_on_small_noisy_vocabularies() {
    // Small vocabularies surface edge cases the big sweep averages away:
    // single-value blocks, left values with no candidates at all, sides
    // that dedup to near-nothing.
    let config = VocabConfig {
        bases: 5,
        left_variants: 1,
        right_variants: 2,
        noise_per_side: 4,
        ..VocabConfig::default()
    };
    for seed in 1000..1050u64 {
        let vocab = dirty_vocabulary(&config, seed);
        for &(threshold, top_k) in &[(0.65, 2), (0.75, 5)] {
            check_case(&vocab, seed, threshold, top_k);
        }
    }
}

#[test]
fn zero_top_k_stores_nothing_and_matches_the_oracle() {
    let vocab = dirty_vocabulary(&VocabConfig::default(), 9);
    let index_config = IndexConfig {
        top_k: 0,
        operator: SimilarityOperator::with_threshold(0.65),
        threads: 1,
        ..IndexConfig::default()
    };
    let oracle = ReferenceIndex::build(&vocab.left, &vocab.right, &index_config);
    let built = SimilarityIndex::build(&vocab.left, &vocab.right, &index_config);
    assert_eq!(oracle.pair_count(), 0);
    assert_eq!(built.pair_count(), 0);
    assert_eq!(oracle, ReferenceIndex::view_of(&built));
}

/// The parallel merge is deterministic: 1/2/8 construction threads build
/// bit-identical indexes (and all of them equal the oracle).
#[test]
fn thread_counts_build_identical_indexes() {
    let config = VocabConfig::default();
    for seed in [3u64, 17] {
        let vocab = dirty_vocabulary(&config, seed);
        let base_config = IndexConfig {
            top_k: 5,
            operator: SimilarityOperator::with_threshold(0.7),
            threads: 1,
            ..IndexConfig::default()
        };
        let oracle = ReferenceIndex::build(&vocab.left, &vocab.right, &base_config);
        let serial = SimilarityIndex::build(&vocab.left, &vocab.right, &base_config);
        assert_eq!(oracle, ReferenceIndex::view_of(&serial), "seed {seed}");
        for threads in [2usize, 8] {
            let threaded = SimilarityIndex::build(
                &vocab.left,
                &vocab.right,
                &base_config.clone().with_threads(threads),
            );
            assert_eq!(
                serial, threaded,
                "seed {seed}: {threads}-thread build diverged from serial"
            );
        }
    }
}

/// Zipf-skewed vocabularies: hot stopword-ish tokens pile most values into
/// a few huge blocks, forcing the index through its skew-aware hot-key path
/// (length-partitioned postings, windowed probes). Entry-for-entry oracle
/// equality here proves the window never skips a candidate the filter could
/// keep — and the 1/2/8-thread sweep pins that the hot path preserves the
/// deterministic parallel merge.
#[test]
fn built_index_equals_oracle_on_zipf_skewed_vocabularies() {
    let config = VocabConfig::skewed_oracle(1.2);
    for seed in 200..215u64 {
        let vocab = dirty_vocabulary(&config, seed);
        for &(threshold, top_k) in &[(0.65, 5), (0.75, 2)] {
            let base_config = IndexConfig {
                top_k,
                operator: SimilarityOperator::with_threshold(threshold),
                threads: 1,
                ..IndexConfig::default()
            };
            let oracle = ReferenceIndex::build(&vocab.left, &vocab.right, &base_config);
            let serial = SimilarityIndex::build(&vocab.left, &vocab.right, &base_config);
            assert_eq!(
                oracle,
                ReferenceIndex::view_of(&serial),
                "seed {seed}, threshold {threshold}, top_k {top_k}: \
                 skewed-vocabulary index diverged from the all-pairs oracle"
            );
            for threads in [2usize, 8] {
                let threaded = SimilarityIndex::build(
                    &vocab.left,
                    &vocab.right,
                    &base_config.clone().with_threads(threads),
                );
                assert_eq!(
                    serial, threaded,
                    "seed {seed}, threshold {threshold}: \
                     {threads}-thread skewed build diverged from serial"
                );
            }
        }
    }
}

/// The hot-key fraction is a pure performance knob: any setting builds the
/// identical index. Swept on skewed vocabularies (where it changes which
/// postings actually go hot) from "everything past the floor is hot" to
/// "the hot path is disabled".
#[test]
fn hot_key_fraction_sweep_builds_identical_indexes_on_skewed_vocabularies() {
    let config = VocabConfig::skewed_oracle(1.2);
    for seed in [300u64, 301, 302] {
        let vocab = dirty_vocabulary(&config, seed);
        let base_config = IndexConfig {
            top_k: 5,
            operator: SimilarityOperator::with_threshold(0.65),
            threads: 1,
            ..IndexConfig::default()
        };
        let reference = SimilarityIndex::build(&vocab.left, &vocab.right, &base_config);
        for fraction in [0.0, 0.01, 0.2, 1.0] {
            let swept = SimilarityIndex::build(
                &vocab.left,
                &vocab.right,
                &base_config.clone().with_hot_key_fraction(fraction),
            );
            assert_eq!(
                reference, swept,
                "seed {seed}: hot_key_fraction {fraction} changed the index"
            );
        }
    }
}

/// Derived indexes: filtering a built index at a raised threshold must
/// equal a fresh build at that threshold — the property `Engine` relies on
/// to hand Castor-Exact a derived catalog without re-aligning. Pinned on
/// seeded dirty vocabularies across thresholds and top-k values.
#[test]
fn filter_min_score_equals_fresh_build_on_seeded_vocabularies() {
    let config = VocabConfig::default();
    for seed in [2u64, 13, 29] {
        let vocab = dirty_vocabulary(&config, seed);
        for top_k in [1usize, 2, 5] {
            let base_config = IndexConfig {
                top_k,
                operator: SimilarityOperator::with_threshold(0.6),
                threads: 1,
                ..IndexConfig::default()
            };
            let base = SimilarityIndex::build(&vocab.left, &vocab.right, &base_config);
            for threshold in [0.7, 0.8, 0.95, 0.9999] {
                let fresh = SimilarityIndex::build(
                    &vocab.left,
                    &vocab.right,
                    &IndexConfig {
                        top_k,
                        operator: SimilarityOperator::with_threshold(threshold),
                        threads: 1,
                        ..IndexConfig::default()
                    },
                );
                assert_eq!(
                    base.filter_min_score(threshold),
                    fresh,
                    "seed {seed}, top_k {top_k}, threshold {threshold}: \
                     filtered index diverged from a fresh build"
                );
            }
        }
    }
}
