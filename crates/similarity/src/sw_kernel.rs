//! Bit-parallel prefilter and banded Smith-Waterman-Gotoh kernel.
//!
//! The index hot path scores millions of candidate pairs; the scalar
//! dynamic program in [`crate::sw_gotoh`] pays `O(|a| · |b|)` per pair.
//! This module cuts that two compounding ways, both *lossless* with respect
//! to the scalar reference:
//!
//! 1. **Bit-parallel match bound** — each value's normalized chars are
//!    packed once into per-bin `u64` position masks ([`SimProfile`]).
//!    An Allison-Dix bit-parallel row recurrence then computes the exact
//!    LCS length of the two *binned* strings in `O(|b|)` word operations
//!    (for values up to 64 normalized chars). Any SWG alignment's matched
//!    pairs form a common subsequence, so `matches ≤ LCS_binned`, and the
//!    lumped bins only *raise* the LCS — the sound direction. Candidates
//!    whose resulting score bound cannot reach the running requirement are
//!    dropped without touching the dynamic program. A Myers-style
//!    bit-parallel edit-distance pass over the same masks
//!    (`matches ≤ (|a| + |b| − D) / 2`) stays as the independently-derived
//!    cross-check the property tests compare against.
//! 2. **Banded exact DP** — a local alignment scoring `S` (raw) through a
//!    cell on diagonal offset `d = j − i` matches at most
//!    `Mcap(d) = min(|a|, |b|, |b| − d, |a| + d)` characters (the cell
//!    splits the path into a prefix matching at most `min(i, j)` chars and
//!    a suffix matching at most `min(|a| − i, |b| − j)`), so with the
//!    shipped parameters (`mismatch ≤ 0`, gap costs ≥ 0) it scores at most
//!    `match_score · Mcap(d)`. Cells whose diagonal cannot reach the
//!    required raw score are provably irrelevant and skipped wholesale:
//!    the DP runs only over `d ∈ [K − |a|, |b| − K]` with
//!    `K = needed_raw / match_score`, widened by one diagonal on each side
//!    so floating-point rounding can never clip a qualifying path.
//!
//! **Contract (the differential-reference discipline of PRs 1–4):** when
//! the banded kernel returns `Some(score)`, that score is bit-identical to
//! the exhaustive scalar DP — every path achieving the final best stays
//! inside the band, where the recurrence computes the exact same IEEE-754
//! operations on the exact same operands; out-of-band neighbors enter as
//! the local-alignment floor (`H = 0`, gap states `−∞`), which only
//! affects paths that provably score below the requirement. When it
//! returns `None`, the true score is strictly below `required`. The scalar
//! [`crate::sw_gotoh::swg_similarity_normalized_chars_at_least`] stays in
//! the tree as the property-test reference (see the tests below and
//! `crates/similarity/tests/index_oracle.rs`).

use crate::length::{char_bin, char_histogram, HIST_BINS};
use crate::sw_gotoh::{SwgParams, ABANDON_SLACK};
use crate::tokenize::normalize;

/// Longest normalized value (in chars) that gets a single-word bit-parallel
/// mask. Longer values skip the Myers prefilter and rely on the histogram
/// bound plus the banded DP alone.
pub const MASK_MAX_LEN: usize = 64;

/// A value's cached normalized form, computed once per value: the char
/// vector the aligner consumes, the character histogram the size filter
/// consumes, and — for values of at most [`MASK_MAX_LEN`] chars — the
/// per-bin `u64` position masks the bit-parallel prefilter consumes.
#[derive(Debug, Clone)]
pub struct SimProfile {
    /// Normalized characters (the aligner's input).
    pub chars: Vec<char>,
    /// Character histogram over the lumped 38-bin alphabet.
    pub hist: [u32; HIST_BINS],
    /// Per-bin position masks: bit `i` of `masks[b]` is set when
    /// `char_bin(chars[i]) == b`. `None` for empty or over-long values.
    masks: Option<Box<[u64; HIST_BINS]>>,
}

impl SimProfile {
    /// Profile of a raw (un-normalized) string.
    pub fn new(raw: &str) -> Self {
        let normalized = normalize(raw);
        let chars: Vec<char> = normalized.chars().collect();
        let hist = char_histogram(&normalized);
        let masks = build_masks(&chars);
        SimProfile { chars, hist, masks }
    }

    /// Normalized length in chars.
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// Whether the normalized form is empty.
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Whether the bit-parallel masks are available (normalized length in
    /// `1..=MASK_MAX_LEN`).
    pub fn has_masks(&self) -> bool {
        self.masks.is_some()
    }
}

fn build_masks(chars: &[char]) -> Option<Box<[u64; HIST_BINS]>> {
    if chars.is_empty() || chars.len() > MASK_MAX_LEN {
        return None;
    }
    let mut masks = Box::new([0u64; HIST_BINS]);
    for (i, &c) in chars.iter().enumerate() {
        masks[char_bin(c)] |= 1u64 << i;
    }
    Some(masks)
}

/// Myers (1999) bit-parallel unit-cost edit distance between the masked
/// pattern and `text`, over the lumped bin alphabet. `pattern_len` must be
/// in `1..=64` (enforced by [`build_masks`]).
fn myers_distance(masks: &[u64; HIST_BINS], pattern_len: usize, text: &[char]) -> u32 {
    debug_assert!((1..=64).contains(&pattern_len));
    let mut pv: u64 = if pattern_len == 64 {
        u64::MAX
    } else {
        (1u64 << pattern_len) - 1
    };
    let mut mv: u64 = 0;
    let mut dist = pattern_len as u32;
    let high = 1u64 << (pattern_len - 1);
    for &c in text {
        let eq = masks[char_bin(c)];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let ph = mv | !(xh | pv);
        let mh = pv & xh;
        if ph & high != 0 {
            dist += 1;
        } else if mh & high != 0 {
            dist -= 1;
        }
        let ph = (ph << 1) | 1;
        let mh = mh << 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    dist
}

/// Allison-Dix (1986) bit-parallel LCS length between the masked pattern
/// and `text`, over the lumped bin alphabet. Bit `j` of `v` records a
/// column where row `i` of the LCS table increments, so `popcount(v)` after
/// the last row *is* the LCS length; the row update is four word operations
/// (the subtraction's borrow chain plays the role Myers' carry chain plays
/// for edit distance). Exact for the binned strings at any `pattern_len`
/// in `1..=64`.
fn lcs_length(masks: &[u64; HIST_BINS], text: &[char]) -> u32 {
    let mut v: u64 = 0;
    for &c in text {
        let x = v | masks[char_bin(c)];
        v = x & !(x.wrapping_sub((v << 1) | 1));
    }
    v.count_ones()
}

/// Upper bound on the number of equal-character pairs any alignment of the
/// two profiles can contain: the exact bit-parallel LCS of the *binned*
/// strings. Returns `None` when neither profile carries masks (both sides
/// longer than [`MASK_MAX_LEN`]) — callers then fall back to the histogram
/// bound alone.
///
/// Soundness: SWG matches require exact char equality, which implies
/// bin-level equality, so the matched pairs form a common subsequence of
/// the binned strings — `matches ≤ LCS_binned`. Lumping bins can only grow
/// the LCS, i.e. only loosen the bound. This is always at least as tight
/// as the Myers edit-distance bound `(|a| + |b| − D) / 2` (pinned by a test
/// below), which is why the gate runs the LCS recurrence; `myers_distance`
/// stays as the independently-derived cross-check.
pub fn aligned_match_upper_bound(a: &SimProfile, b: &SimProfile) -> Option<f64> {
    let (pattern, text) = if a.masks.is_some() { (a, b) } else { (b, a) };
    let masks = pattern.masks.as_deref()?;
    Some(lcs_length(masks, &text.chars) as f64)
}

/// The Myers edit-distance form of the match bound,
/// `(|a| + |b| − D) / 2` — never tighter than
/// [`aligned_match_upper_bound`] but derived through an independent
/// recurrence, which is exactly what makes it a useful cross-check (the
/// property tests assert `LCS bound ≤ Myers bound` on random inputs).
pub fn myers_match_upper_bound(a: &SimProfile, b: &SimProfile) -> Option<f64> {
    let (pattern, text) = if a.masks.is_some() { (a, b) } else { (b, a) };
    let masks = pattern.masks.as_deref()?;
    let d = myers_distance(masks, pattern.len(), &text.chars);
    Some(((pattern.len() + text.len()) as f64 - d as f64) / 2.0)
}

/// Raw best local score over the banded dynamic program, abandoning when it
/// provably cannot reach `needed_raw`. Returns `None` in that case;
/// a `Some` value is bit-identical to the exhaustive scalar DP (see the
/// module docs for the band argument).
fn banded_best_local_score_at_least(
    a: &[char],
    b: &[char],
    p: &SwgParams,
    needed_raw: f64,
) -> Option<f64> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Some(0.0);
    }
    // The Mcap(d) band argument needs parameters under which only matches
    // add score; otherwise (and when nothing is required) the band covers
    // the whole matrix and the loop below is the exhaustive DP.
    let band_ok = needed_raw > 0.0
        && p.match_score > 0.0
        && p.mismatch_score <= 0.0
        && p.gap_open >= 0.0
        && p.gap_extend >= 0.0;
    let (d_lo, d_hi, banded) = if band_ok {
        if p.match_score * (n.min(m) as f64) < needed_raw {
            return None; // even a full-length perfect match falls short
        }
        let k = needed_raw / p.match_score;
        // Keep diagonals with match_score · min(m − d, n + d) ≥ needed_raw,
        // widened by one diagonal per side for floating-point safety.
        let lo = ((k - n as f64).ceil() as isize - 1).max(1 - n as isize);
        let hi = ((m as f64 - k).floor() as isize + 1).min(m as isize - 1);
        if lo > hi {
            return None;
        }
        (lo, hi, true)
    } else {
        (1 - n as isize, m as isize - 1, false)
    };

    // Rolling rows over the band: H (best score ending at i,j), E (gap in
    // a, restarts per row), F (gap in b, carried across rows). Positions
    // outside a row's band hold the out-of-band boundary (H = 0, F = −∞),
    // which the write pattern maintains: the band's right edge advances by
    // at most one column per row, so a position is first read no earlier
    // than the row before it is first written, and still holds its
    // initialized boundary value then. The four row buffers are
    // thread-local scratch — the hot path calls this tens of thousands of
    // times per build, and re-filling beats re-allocating.
    DP_ROWS.with(|rows| {
        let mut rows = rows.borrow_mut();
        let (h_prev, h_curr, f) = rows.reset(m);
        banded_dp_loop(a, b, p, needed_raw, d_lo, d_hi, banded, h_prev, h_curr, f)
    })
}

/// The rolling DP rows, reused across kernel calls on one thread. Two H
/// rows roll (the diagonal term reads the previous row at `j − 1` *after*
/// the current row wrote `j − 1`); F needs only one row, updated in place,
/// because `F(i, j)` reads exclusively column `j` of row `i − 1`.
#[derive(Default)]
struct DpRows {
    h_prev: Vec<f64>,
    h_curr: Vec<f64>,
    f: Vec<f64>,
}

impl DpRows {
    /// Re-initialize for a `m + 1`-column matrix: H rows to the
    /// local-alignment floor, F to the out-of-band boundary.
    fn reset(&mut self, m: usize) -> (&mut Vec<f64>, &mut Vec<f64>, &mut Vec<f64>) {
        for h in [&mut self.h_prev, &mut self.h_curr] {
            h.clear();
            h.resize(m + 1, 0.0);
        }
        self.f.clear();
        self.f.resize(m + 1, f64::NEG_INFINITY);
        (&mut self.h_prev, &mut self.h_curr, &mut self.f)
    }
}

thread_local! {
    static DP_ROWS: std::cell::RefCell<DpRows> = std::cell::RefCell::new(DpRows::default());
}

/// The banded DP loop proper, over caller-provided (already initialized)
/// rolling rows. Split out so the buffer plumbing stays out of the band
/// derivation above.
#[allow(clippy::too_many_arguments)]
fn banded_dp_loop(
    a: &[char],
    b: &[char],
    p: &SwgParams,
    needed_raw: f64,
    d_lo: isize,
    d_hi: isize,
    banded: bool,
    h_prev: &mut Vec<f64>,
    h_curr: &mut Vec<f64>,
    f: &mut [f64],
) -> Option<f64> {
    let n = a.len();
    let m = b.len();
    let mut h_prev = &mut *h_prev;
    let mut h_curr = &mut *h_curr;
    let (ms, mm, go, ge) = (p.match_score, p.mismatch_score, p.gap_open, p.gap_extend);
    let mut best = 0.0f64;

    let abandon_enabled =
        needed_raw > f64::NEG_INFINITY && p.gap_open >= 0.0 && p.gap_extend >= 0.0;
    let row_gain = p.match_score.max(p.mismatch_score).max(0.0);

    for i in 1..=n {
        let ii = i as isize;
        let jl = (ii + d_lo).max(1);
        if jl > m as isize {
            break; // the band has exited the matrix on the right
        }
        let jh = (ii + d_hi).min(m as isize);
        if jh < 1 {
            continue; // the band has not entered the matrix yet; rows are
                      // untouched, so the rolling buffers stay boundary-clean
        }
        let (jl, jh) = (jl as usize, jh as usize);
        // Left boundary: the cell just left of the band is out-of-band
        // (or column 0) — the local-alignment floor in either case. The
        // running `prev_score` carries it through the row; the buffer write
        // is for the *next* row's diagonal read at `jl − 1`.
        h_curr[jl - 1] = 0.0;
        let ca = a[i - 1];
        let mut e = f64::NEG_INFINITY;
        let mut row_max = 0.0f64;
        let mut prev_score = 0.0f64;
        // Zipped slices over the band: `hp2` is the `[h_prev[j − 1],
        // h_prev[j]]` window, so every per-cell access is bounds-checked
        // once at slice construction instead of per iteration.
        let diag_src = &h_prev[jl - 1..=jh];
        let iter = b[jl - 1..jh]
            .iter()
            .zip(diag_src.windows(2))
            .zip(&mut f[jl..=jh])
            .zip(&mut h_curr[jl..=jh]);
        for (((&cb, hp2), f_j), h_out) in iter {
            e = (e - ge).max(prev_score - go);
            let fj = (*f_j - ge).max(hp2[1] - go);
            *f_j = fj;
            let subst = if ca == cb { ms } else { mm };
            let diag = hp2[0] + subst;
            // `score ≥ fj` by construction, so `row_max` over scores already
            // accounts for the gap states.
            let score = diag.max(e).max(fj).max(0.0);
            *h_out = score;
            if score > best {
                best = score;
            }
            row_max = row_max.max(score);
            prev_score = score;
        }
        // No boundary restore is needed when the band moves right: the next
        // row reads h at indices ≥ its jl − 1 ≥ this row's jl − 1, so cells
        // this row left stale are never consulted again, and cells beyond
        // this row's jh were last touched two rows back at columns ≤ this
        // jh — i.e. still hold their initialized boundary values when first
        // read. F is per-column state: a column's slot is first read in the
        // row the band first covers it, still holding −∞ then, and a column
        // the band has passed is never read again.
        let future_bound = row_max + row_gain * (n - i).min(m) as f64;
        if abandon_enabled && best < needed_raw && future_bound < needed_raw {
            return None;
        }
        std::mem::swap(&mut h_prev, &mut h_curr);
    }

    if !banded || best >= needed_raw {
        Some(best)
    } else {
        // The banded value may undercount paths that wander out of band;
        // all of those score below `needed_raw`, so the only safe claim
        // here is the abandon claim.
        None
    }
}

/// Banded counterpart of
/// [`crate::sw_gotoh::swg_similarity_normalized_chars_at_least`]: gives up
/// (returns `None`) as soon as the similarity provably cannot reach
/// `required`, and otherwise returns the exact similarity, bit-identical to
/// the scalar exhaustive DP. Pass `f64::NEG_INFINITY` to never abandon (the
/// band then covers the whole matrix and this *is* the exhaustive DP).
pub fn swg_similarity_banded_at_least(
    ca: &[char],
    cb: &[char],
    params: &SwgParams,
    required: f64,
) -> Option<f64> {
    if ca.is_empty() && cb.is_empty() {
        return Some(1.0);
    }
    if ca.is_empty() || cb.is_empty() {
        return Some(0.0);
    }
    let denom = params.match_score * ca.len().min(cb.len()) as f64;
    if denom <= 0.0 {
        return Some(0.0);
    }
    // Identical-string fast path: dirty vocabularies carry many exact
    // duplicates across the two sides, and the full-diagonal all-match path
    // is optimal whenever only matches add score. With `match_score == 1.0`
    // the scalar DP sums exact small integers, so its normalized result is
    // exactly `1.0` — returning it directly preserves bit-identity.
    if params.match_score == 1.0
        && params.mismatch_score <= 0.0
        && params.gap_open >= 0.0
        && params.gap_extend >= 0.0
        && ca == cb
    {
        return Some(1.0);
    }
    let needed_raw = if required > f64::NEG_INFINITY {
        (required - ABANDON_SLACK) * denom
    } else {
        f64::NEG_INFINITY
    };
    let best = banded_best_local_score_at_least(ca, cb, params, needed_raw)?;
    Some((best / denom).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw_gotoh::{
        swg_similarity_normalized_chars, swg_similarity_normalized_chars_at_least,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn chars(s: &str) -> Vec<char> {
        normalize(s).chars().collect()
    }

    /// Reference unit-cost edit distance over binned chars, the textbook
    /// O(nm) recurrence — independent of the bit-parallel code.
    fn reference_binned_distance(a: &[char], b: &[char]) -> u32 {
        let mut prev: Vec<u32> = (0..=b.len() as u32).collect();
        let mut curr = vec![0u32; b.len() + 1];
        for (i, &ca) in a.iter().enumerate() {
            curr[0] = i as u32 + 1;
            for (j, &cb) in b.iter().enumerate() {
                let sub = prev[j] + u32::from(char_bin(ca) != char_bin(cb));
                curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[b.len()]
    }

    fn random_chars(rng: &mut StdRng, alphabet: &str, max_len: usize) -> Vec<char> {
        let len = rng.gen_range(0..max_len + 1);
        (0..len)
            .map(|_| alphabet.as_bytes()[rng.gen_range(0..alphabet.len())] as char)
            .collect()
    }

    #[test]
    fn myers_distance_matches_the_reference_dp() {
        let mut rng = StdRng::seed_from_u64(0x4d79);
        let alphabet = "abcdef 19";
        for _ in 0..600 {
            let a = random_chars(&mut rng, alphabet, 40);
            let b = random_chars(&mut rng, alphabet, 40);
            if a.is_empty() || a.len() > MASK_MAX_LEN {
                continue;
            }
            let masks = build_masks(&a).expect("in range");
            assert_eq!(
                myers_distance(&masks, a.len(), &b),
                reference_binned_distance(&a, &b),
                "({a:?}, {b:?})"
            );
        }
    }

    #[test]
    fn myers_distance_handles_the_64_char_edge() {
        let a: Vec<char> = std::iter::repeat_n('a', 64).collect();
        let mut b = a.clone();
        b[63] = 'b';
        let masks = build_masks(&a).expect("64 chars still masked");
        assert_eq!(myers_distance(&masks, 64, &a), 0);
        assert_eq!(myers_distance(&masks, 64, &b), 1);
        let too_long: Vec<char> = std::iter::repeat_n('a', 65).collect();
        assert!(build_masks(&too_long).is_none());
        assert!(build_masks(&[]).is_none());
    }

    #[test]
    fn match_upper_bound_is_sound_against_the_exact_swg() {
        // The bound caps the number of matched chars in any alignment, so
        // raw_swg ≤ match_score · bound and the normalized similarity is at
        // most bound / min_len — on every random pair.
        let mut rng = StdRng::seed_from_u64(0xb17b);
        let params = SwgParams::default();
        let alphabet = "abcab 1";
        for _ in 0..600 {
            let a = random_chars(&mut rng, alphabet, 30);
            let b = random_chars(&mut rng, alphabet, 30);
            if a.is_empty() || b.is_empty() {
                continue;
            }
            let pa = SimProfile::new(&a.iter().collect::<String>());
            let pb = SimProfile::new(&b.iter().collect::<String>());
            if pa.is_empty() || pb.is_empty() {
                continue; // normalization may collapse an all-space draw
            }
            let Some(ub) = aligned_match_upper_bound(&pa, &pb) else {
                continue;
            };
            let exact = swg_similarity_normalized_chars(&pa.chars, &pb.chars, &params);
            let sim_bound = (ub / pa.len().min(pb.len()) as f64).min(1.0);
            assert!(
                exact <= sim_bound + 1e-12,
                "({a:?}, {b:?}): exact {exact} above bound {sim_bound}"
            );
        }
    }

    /// Reference LCS length over binned chars, the textbook O(nm)
    /// recurrence — independent of the bit-parallel code.
    fn reference_binned_lcs(a: &[char], b: &[char]) -> u32 {
        let mut prev = vec![0u32; b.len() + 1];
        let mut curr = vec![0u32; b.len() + 1];
        for &ca in a {
            for (j, &cb) in b.iter().enumerate() {
                curr[j + 1] = if char_bin(ca) == char_bin(cb) {
                    prev[j] + 1
                } else {
                    prev[j + 1].max(curr[j])
                };
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[b.len()]
    }

    #[test]
    fn lcs_length_matches_the_reference_dp() {
        let mut rng = StdRng::seed_from_u64(0x1c5);
        let alphabet = "abcdef 19";
        for _ in 0..600 {
            let a = random_chars(&mut rng, alphabet, 40);
            let b = random_chars(&mut rng, alphabet, 40);
            if a.is_empty() || a.len() > MASK_MAX_LEN {
                continue;
            }
            let masks = build_masks(&a).expect("in range");
            assert_eq!(
                lcs_length(&masks, &b),
                reference_binned_lcs(&a, &b),
                "({a:?}, {b:?})"
            );
        }
    }

    #[test]
    fn lcs_length_handles_the_64_char_edge() {
        let a: Vec<char> = std::iter::repeat_n('a', 64).collect();
        let mut b = a.clone();
        b[63] = 'b';
        let masks = build_masks(&a).expect("64 chars still masked");
        assert_eq!(lcs_length(&masks, &a), 64);
        assert_eq!(lcs_length(&masks, &b), 63);
        assert_eq!(lcs_length(&masks, &[]), 0);
    }

    #[test]
    fn lcs_bound_is_never_looser_than_the_myers_bound() {
        // Two independently-derived upper bounds on the same quantity; the
        // LCS one must dominate, which is why the gate runs it.
        let mut rng = StdRng::seed_from_u64(0x1c52);
        let alphabet = "abcab 1";
        for _ in 0..600 {
            let a = random_chars(&mut rng, alphabet, 40);
            let b = random_chars(&mut rng, alphabet, 40);
            let pa = SimProfile::new(&a.iter().collect::<String>());
            let pb = SimProfile::new(&b.iter().collect::<String>());
            let (Some(lcs), Some(myers)) = (
                aligned_match_upper_bound(&pa, &pb),
                myers_match_upper_bound(&pa, &pb),
            ) else {
                continue;
            };
            assert!(lcs <= myers + 1e-12, "({a:?}, {b:?}): {lcs} > {myers}");
        }
    }

    #[test]
    fn identical_strings_score_exactly_one_through_the_fast_path() {
        // The fast path must agree with the exhaustive scalar DP bit for
        // bit, including on strings long enough to skip the masks.
        let params = SwgParams::default();
        for s in ["superbad", "a", "the item number 17", &"xy".repeat(40)] {
            let cs = chars(s);
            assert_eq!(
                swg_similarity_banded_at_least(&cs, &cs, &params, 0.9),
                Some(1.0)
            );
            assert_eq!(swg_similarity_normalized_chars(&cs, &cs, &params), 1.0);
        }
    }

    #[test]
    fn profiles_expose_masks_only_in_range() {
        assert!(SimProfile::new("star wars").has_masks());
        assert!(!SimProfile::new("").has_masks());
        assert!(!SimProfile::new(&"x".repeat(80)).has_masks());
        let exactly_64 = "ab".repeat(32);
        assert!(SimProfile::new(&exactly_64).has_masks());
    }

    /// The central kernel property: on random pairs and random requirements,
    /// a completed banded run is bit-identical to the exhaustive scalar DP,
    /// and an abandoned run only ever hides scores strictly below the
    /// requirement. This is the same contract the scalar early-abandon path
    /// pins against the exhaustive DP — the kernel chains onto it.
    #[test]
    fn banded_kernel_is_bit_identical_or_abandon_sound() {
        let mut rng = StdRng::seed_from_u64(0xba2d);
        let params = SwgParams::default();
        let alphabet = "abcdef 19";
        for case in 0..1500 {
            let a = random_chars(&mut rng, alphabet, 24);
            let b = random_chars(&mut rng, alphabet, 24);
            let exact = swg_similarity_normalized_chars(&a, &b, &params);
            let required = rng.gen_range(0.0..1.2);
            match swg_similarity_banded_at_least(&a, &b, &params, required) {
                Some(v) => assert_eq!(
                    v, exact,
                    "case {case}: banded completed with a different score \
                     ({a:?}, {b:?}, required {required})"
                ),
                None => assert!(
                    exact < required,
                    "case {case}: banded abandoned ({a:?}, {b:?}) at required \
                     {required} but exact is {exact}"
                ),
            }
        }
    }

    #[test]
    fn banded_kernel_agrees_with_the_scalar_abandon_path() {
        // Chain the two fallible paths against each other: whenever both
        // complete they must agree bit for bit; they may disagree on *when*
        // to abandon (the band is a stronger prune), never on values.
        let mut rng = StdRng::seed_from_u64(0xc4a1);
        let params = SwgParams::default();
        for _ in 0..800 {
            let a = random_chars(&mut rng, "abcd e2", 20);
            let b = random_chars(&mut rng, "abcd e2", 20);
            let required = rng.gen_range(0.0..1.1);
            let scalar = swg_similarity_normalized_chars_at_least(&a, &b, &params, required);
            let banded = swg_similarity_banded_at_least(&a, &b, &params, required);
            if let (Some(s), Some(k)) = (scalar, banded) {
                assert_eq!(s, k, "({a:?}, {b:?}, required {required})");
            }
        }
    }

    #[test]
    fn unbounded_required_runs_the_full_matrix() {
        // With nothing required the band covers everything: the kernel must
        // return exactly the exhaustive similarity, never None.
        let pairs = [
            ("Superbad", "Superbad (2007)"),
            ("Star Wars", "The Orphanage"),
            ("abc", "xyz"),
            ("", "abc"),
            ("", ""),
        ];
        let params = SwgParams::default();
        for (a, b) in pairs {
            let (ca, cb) = (chars(a), chars(b));
            assert_eq!(
                swg_similarity_banded_at_least(&ca, &cb, &params, f64::NEG_INFINITY),
                Some(swg_similarity_normalized_chars(&ca, &cb, &params)),
                "({a:?}, {b:?})"
            );
        }
    }

    #[test]
    fn pathological_params_disable_the_band_not_the_answer() {
        // A positive mismatch score breaks the band argument; the kernel
        // must fall back to the full matrix and still return exact values.
        let weird = SwgParams {
            mismatch_score: 0.5,
            ..SwgParams::default()
        };
        let (a, b) = (chars("abcdef"), chars("uvwxyz"));
        let exact = swg_similarity_normalized_chars(&a, &b, &weird);
        // The row-wise abandon test may still fire (gap costs stay
        // non-negative), so either the exact value or a sound abandon.
        match swg_similarity_banded_at_least(&a, &b, &weird, 0.9) {
            Some(v) => assert_eq!(v, exact, "fallback must stay exact"),
            None => assert!(exact < 0.9, "abandon must stay sound"),
        }
    }
}
