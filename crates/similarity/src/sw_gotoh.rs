//! Smith-Waterman-Gotoh local sequence alignment similarity.
//!
//! The paper's similarity operator uses the Smith-Waterman-Gotoh function
//! (local alignment with affine gap penalties, Gotoh 1982) over strings,
//! normalized to `[0, 1]`. We implement the standard three-matrix dynamic
//! program (`H`, `E`, `F`) over characters of the normalized strings and
//! normalize the best local score by `match_score * min(|a|, |b|)`, which is
//! the maximum achievable score for the shorter string.

use crate::tokenize::normalize;

/// Scoring parameters of the Smith-Waterman-Gotoh alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwgParams {
    /// Reward for two equal characters.
    pub match_score: f64,
    /// Penalty (negative contribution) for two different characters.
    pub mismatch_score: f64,
    /// Cost of opening a gap (subtracted when a gap starts).
    pub gap_open: f64,
    /// Cost of extending an existing gap by one character.
    pub gap_extend: f64,
}

impl Default for SwgParams {
    fn default() -> Self {
        // The SimMetrics defaults used by Castor/DLearn-style systems:
        // reward 1 for a match, -2 for a mismatch, affine gaps of 0.5 / 0.3.
        SwgParams {
            match_score: 1.0,
            mismatch_score: -2.0,
            gap_open: 0.5,
            gap_extend: 0.3,
        }
    }
}

/// Raw (un-normalized) best local score, abandoning once it provably cannot
/// reach `needed_raw` (returns `None` in that case, `Some(best)` otherwise).
///
/// The abandon test is row-wise: let `S_i` be the maximum over the live
/// dynamic-program states of row `i` (`H` and the carried gap state `F`;
/// the within-row state `E` restarts each row and derives from row-`i` `H`
/// minus a non-negative gap cost). Every cell of a later row either starts
/// a fresh alignment (value ≤ `match_score · remaining_rows`, and
/// `S_i ≥ 0`) or extends a row-`i` state, gaining at most `match_score`
/// per row — so the final best is at most
/// `max(best_so_far, S_i + match_score · (n - i))`. When that bound falls
/// below `needed_raw`, no later cell can matter. The test only compares —
/// it never alters a computed cell — so a `Some` result is bit-identical
/// to the exhaustive computation.
fn best_local_score_at_least(
    a: &[char],
    b: &[char],
    p: &SwgParams,
    needed_raw: f64,
) -> Option<f64> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Some(0.0);
    }
    // Rolling rows: H (best score ending at i,j), E (gap in a), F (gap in b).
    let mut h_prev = vec![0.0f64; m + 1];
    let mut h_curr = vec![0.0f64; m + 1];
    let mut f_prev = vec![f64::NEG_INFINITY; m + 1];
    let mut f_curr = vec![f64::NEG_INFINITY; m + 1];
    let mut best = 0.0f64;

    // The per-row gain bound (and therefore the abandon test) needs gap
    // costs that never *add* score; with pathological negative gap costs
    // the test is disabled and the program runs to completion.
    let abandon_enabled =
        needed_raw > f64::NEG_INFINITY && p.gap_open >= 0.0 && p.gap_extend >= 0.0;
    let row_gain = p.match_score.max(p.mismatch_score).max(0.0);

    for i in 1..=n {
        let mut e = f64::NEG_INFINITY;
        let mut row_max = 0.0f64;
        h_curr[0] = 0.0;
        for j in 1..=m {
            e = (e - p.gap_extend).max(h_curr[j - 1] - p.gap_open);
            f_curr[j] = (f_prev[j] - p.gap_extend).max(h_prev[j] - p.gap_open);
            let subst = if a[i - 1] == b[j - 1] {
                p.match_score
            } else {
                p.mismatch_score
            };
            let diag = h_prev[j - 1] + subst;
            let score = diag.max(e).max(f_curr[j]).max(0.0);
            h_curr[j] = score;
            if score > best {
                best = score;
            }
            row_max = row_max.max(score).max(f_curr[j]);
        }
        // Future gain is capped by the remaining rows and by the other
        // string's total length (a path consumes each column at most once).
        let future_bound = row_max + row_gain * (n - i).min(m) as f64;
        if abandon_enabled && best < needed_raw && future_bound < needed_raw {
            return None;
        }
        std::mem::swap(&mut h_prev, &mut h_curr);
        std::mem::swap(&mut f_prev, &mut f_curr);
    }
    Some(best)
}

/// Normalized Smith-Waterman-Gotoh similarity of two raw strings in `[0, 1]`.
///
/// Strings are normalized (lowercased, punctuation collapsed) before
/// alignment, so `"Superbad (2007)"` and `"superbad 2007"` score 1.0.
pub fn swg_similarity(a: &str, b: &str) -> f64 {
    swg_similarity_with(a, b, &SwgParams::default())
}

/// Normalized similarity with explicit scoring parameters.
pub fn swg_similarity_with(a: &str, b: &str, params: &SwgParams) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    let ca: Vec<char> = na.chars().collect();
    let cb: Vec<char> = nb.chars().collect();
    swg_similarity_normalized_chars(&ca, &cb, params)
}

/// Similarity of two **already-normalized** char slices. Bit-identical to
/// [`swg_similarity_with`] on the normalized form of its inputs — the hot
/// path for index construction, which normalizes every value exactly once
/// and scores candidate pairs from the cached char vectors.
pub fn swg_similarity_normalized_chars(ca: &[char], cb: &[char], params: &SwgParams) -> f64 {
    swg_similarity_normalized_chars_at_least(ca, cb, params, f64::NEG_INFINITY)
        .expect("no abandon threshold")
}

/// Safety slack of the early-abandon translation from a required
/// *similarity* to a required *raw score*: the abandon test fires only when
/// the final similarity is provably below `required` by more than this, so
/// the handful of floating-point roundings between the two scales can never
/// abandon a pair whose true score ties the requirement exactly.
pub(crate) const ABANDON_SLACK: f64 = 1e-9;

/// Like [`swg_similarity_normalized_chars`], but gives up as soon as the
/// similarity provably cannot reach `required` (minus a tiny slack) and
/// returns `None` — the caller learns "strictly below `required`" without
/// paying for the full dynamic program. A `Some` result is bit-identical
/// to the exhaustive function. Pass `f64::NEG_INFINITY` to never abandon.
pub fn swg_similarity_normalized_chars_at_least(
    ca: &[char],
    cb: &[char],
    params: &SwgParams,
    required: f64,
) -> Option<f64> {
    if ca.is_empty() && cb.is_empty() {
        return Some(1.0);
    }
    if ca.is_empty() || cb.is_empty() {
        return Some(0.0);
    }
    let denom = params.match_score * ca.len().min(cb.len()) as f64;
    if denom <= 0.0 {
        return Some(0.0);
    }
    let needed_raw = if required > f64::NEG_INFINITY {
        (required - ABANDON_SLACK) * denom
    } else {
        f64::NEG_INFINITY
    };
    let best = best_local_score_at_least(ca, cb, params, needed_raw)?;
    Some((best / denom).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        assert_eq!(swg_similarity("Superbad", "Superbad"), 1.0);
        assert_eq!(swg_similarity("", ""), 1.0);
    }

    #[test]
    fn empty_vs_nonempty_scores_zero() {
        assert_eq!(swg_similarity("", "abc"), 0.0);
        assert_eq!(swg_similarity("abc", ""), 0.0);
    }

    #[test]
    fn substring_scores_one_after_normalization() {
        // The shorter string aligns perfectly inside the longer one.
        assert!(swg_similarity("Superbad", "Superbad (2007)") > 0.99);
        assert!(swg_similarity("Star Wars", "Star Wars: Episode IV - 1977") > 0.99);
    }

    #[test]
    fn unrelated_strings_score_low() {
        assert!(swg_similarity("Superbad", "Orphanage") < 0.6);
        assert!(swg_similarity("aaaa", "zzzz") < 0.01);
    }

    #[test]
    fn similarity_is_symmetric() {
        let pairs = [
            ("Zoolander", "Zoolander 2001"),
            ("J. Smth", "Jon Smith"),
            ("abc", "abd"),
        ];
        for (a, b) in pairs {
            let ab = swg_similarity(a, b);
            let ba = swg_similarity(b, a);
            assert!((ab - ba).abs() < 1e-12, "{a} vs {b}: {ab} != {ba}");
        }
    }

    #[test]
    fn case_and_punctuation_do_not_matter() {
        assert_eq!(swg_similarity("STAR-WARS", "star wars"), 1.0);
    }

    #[test]
    fn small_typos_keep_similarity_high() {
        assert!(swg_similarity("Zoolander", "Zoolandr") > 0.8);
        assert!(swg_similarity("computers accessories", "computer accessories") > 0.9);
    }

    #[test]
    fn char_path_is_bit_identical_to_the_string_path() {
        let params = SwgParams::default();
        for (a, b) in [
            ("Superbad", "Superbad (2007)"),
            ("Star Wars", "star-wars"),
            ("", "abc"),
            ("J. Smth", "Jon Smith"),
        ] {
            let ca: Vec<char> = normalize(a).chars().collect();
            let cb: Vec<char> = normalize(b).chars().collect();
            assert_eq!(
                swg_similarity_with(a, b, &params),
                swg_similarity_normalized_chars(&ca, &cb, &params),
                "({a:?}, {b:?})"
            );
        }
    }

    #[test]
    fn early_abandon_never_misreports_a_reachable_score() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xabdb);
        let alphabet = "abcdef ";
        let params = SwgParams::default();
        for _ in 0..500 {
            let mut s = |max_len: usize| -> Vec<char> {
                let len = rng.gen_range(1..max_len + 1);
                (0..len)
                    .map(|_| alphabet.as_bytes()[rng.gen_range(0..alphabet.len())] as char)
                    .collect()
            };
            let a = s(18);
            let b = s(18);
            let exact = swg_similarity_normalized_chars(&a, &b, &params);
            let required = rng.gen_range(0.0..1.2);
            match swg_similarity_normalized_chars_at_least(&a, &b, &params, required) {
                // A completed run must be bit-identical to the exhaustive one.
                Some(v) => assert_eq!(v, exact, "({a:?}, {b:?}, required {required})"),
                // An abandon must only happen below the requirement.
                None => assert!(
                    exact < required,
                    "abandoned ({a:?}, {b:?}) at required {required} but exact is {exact}"
                ),
            }
        }
    }

    #[test]
    fn custom_params_are_respected() {
        let strict = SwgParams {
            mismatch_score: -10.0,
            ..SwgParams::default()
        };
        assert!(swg_similarity_with("abcd", "abxd", &strict) <= swg_similarity("abcd", "abxd"));
    }
}
