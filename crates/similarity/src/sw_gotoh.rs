//! Smith-Waterman-Gotoh local sequence alignment similarity.
//!
//! The paper's similarity operator uses the Smith-Waterman-Gotoh function
//! (local alignment with affine gap penalties, Gotoh 1982) over strings,
//! normalized to `[0, 1]`. We implement the standard three-matrix dynamic
//! program (`H`, `E`, `F`) over characters of the normalized strings and
//! normalize the best local score by `match_score * min(|a|, |b|)`, which is
//! the maximum achievable score for the shorter string.

use crate::tokenize::normalize;

/// Scoring parameters of the Smith-Waterman-Gotoh alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwgParams {
    /// Reward for two equal characters.
    pub match_score: f64,
    /// Penalty (negative contribution) for two different characters.
    pub mismatch_score: f64,
    /// Cost of opening a gap (subtracted when a gap starts).
    pub gap_open: f64,
    /// Cost of extending an existing gap by one character.
    pub gap_extend: f64,
}

impl Default for SwgParams {
    fn default() -> Self {
        // The SimMetrics defaults used by Castor/DLearn-style systems:
        // reward 1 for a match, -2 for a mismatch, affine gaps of 0.5 / 0.3.
        SwgParams {
            match_score: 1.0,
            mismatch_score: -2.0,
            gap_open: 0.5,
            gap_extend: 0.3,
        }
    }
}

/// Raw (un-normalized) best local alignment score between two char slices.
fn best_local_score(a: &[char], b: &[char], p: &SwgParams) -> f64 {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return 0.0;
    }
    // Rolling rows: H (best score ending at i,j), E (gap in a), F (gap in b).
    let mut h_prev = vec![0.0f64; m + 1];
    let mut h_curr = vec![0.0f64; m + 1];
    let mut f_prev = vec![f64::NEG_INFINITY; m + 1];
    let mut f_curr = vec![f64::NEG_INFINITY; m + 1];
    let mut best = 0.0f64;

    for i in 1..=n {
        let mut e = f64::NEG_INFINITY;
        h_curr[0] = 0.0;
        for j in 1..=m {
            e = (e - p.gap_extend).max(h_curr[j - 1] - p.gap_open);
            f_curr[j] = (f_prev[j] - p.gap_extend).max(h_prev[j] - p.gap_open);
            let subst = if a[i - 1] == b[j - 1] {
                p.match_score
            } else {
                p.mismatch_score
            };
            let diag = h_prev[j - 1] + subst;
            let score = diag.max(e).max(f_curr[j]).max(0.0);
            h_curr[j] = score;
            if score > best {
                best = score;
            }
        }
        std::mem::swap(&mut h_prev, &mut h_curr);
        std::mem::swap(&mut f_prev, &mut f_curr);
    }
    best
}

/// Normalized Smith-Waterman-Gotoh similarity of two raw strings in `[0, 1]`.
///
/// Strings are normalized (lowercased, punctuation collapsed) before
/// alignment, so `"Superbad (2007)"` and `"superbad 2007"` score 1.0.
pub fn swg_similarity(a: &str, b: &str) -> f64 {
    swg_similarity_with(a, b, &SwgParams::default())
}

/// Normalized similarity with explicit scoring parameters.
pub fn swg_similarity_with(a: &str, b: &str, params: &SwgParams) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    if na.is_empty() && nb.is_empty() {
        return 1.0;
    }
    if na.is_empty() || nb.is_empty() {
        return 0.0;
    }
    let ca: Vec<char> = na.chars().collect();
    let cb: Vec<char> = nb.chars().collect();
    let best = best_local_score(&ca, &cb, params);
    let denom = params.match_score * ca.len().min(cb.len()) as f64;
    if denom <= 0.0 {
        return 0.0;
    }
    (best / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        assert_eq!(swg_similarity("Superbad", "Superbad"), 1.0);
        assert_eq!(swg_similarity("", ""), 1.0);
    }

    #[test]
    fn empty_vs_nonempty_scores_zero() {
        assert_eq!(swg_similarity("", "abc"), 0.0);
        assert_eq!(swg_similarity("abc", ""), 0.0);
    }

    #[test]
    fn substring_scores_one_after_normalization() {
        // The shorter string aligns perfectly inside the longer one.
        assert!(swg_similarity("Superbad", "Superbad (2007)") > 0.99);
        assert!(swg_similarity("Star Wars", "Star Wars: Episode IV - 1977") > 0.99);
    }

    #[test]
    fn unrelated_strings_score_low() {
        assert!(swg_similarity("Superbad", "Orphanage") < 0.6);
        assert!(swg_similarity("aaaa", "zzzz") < 0.01);
    }

    #[test]
    fn similarity_is_symmetric() {
        let pairs = [
            ("Zoolander", "Zoolander 2001"),
            ("J. Smth", "Jon Smith"),
            ("abc", "abd"),
        ];
        for (a, b) in pairs {
            let ab = swg_similarity(a, b);
            let ba = swg_similarity(b, a);
            assert!((ab - ba).abs() < 1e-12, "{a} vs {b}: {ab} != {ba}");
        }
    }

    #[test]
    fn case_and_punctuation_do_not_matter() {
        assert_eq!(swg_similarity("STAR-WARS", "star wars"), 1.0);
    }

    #[test]
    fn small_typos_keep_similarity_high() {
        assert!(swg_similarity("Zoolander", "Zoolandr") > 0.8);
        assert!(swg_similarity("computers accessories", "computer accessories") > 0.9);
    }

    #[test]
    fn custom_params_are_respected() {
        let strict = SwgParams {
            mismatch_score: -10.0,
            ..SwgParams::default()
        };
        assert!(swg_similarity_with("abcd", "abxd", &strict) <= swg_similarity("abcd", "abxd"));
    }
}
