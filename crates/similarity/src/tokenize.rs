//! String normalization and tokenization used for similarity blocking.

/// Normalize a string for similarity comparison: lowercase and collapse any
/// non-alphanumeric run into a single space.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Split a normalized string into word tokens.
pub fn tokens(s: &str) -> Vec<String> {
    normalize(s)
        .split(' ')
        .filter(|t| !t.is_empty())
        .map(|t| t.to_string())
        .collect()
}

/// Character trigrams of the normalized string (used as a fallback blocking
/// key for single-token values such as person names).
pub fn trigrams(s: &str) -> Vec<String> {
    let n = normalize(s);
    let chars: Vec<char> = n.chars().collect();
    if chars.len() < 3 {
        if n.is_empty() {
            return Vec::new();
        }
        return vec![n];
    }
    chars.windows(3).map(|w| w.iter().collect()).collect()
}

/// Blocking keys for a value: its word tokens plus, for short values, their
/// character trigrams. Two values that share no blocking key are never
/// compared by the similarity index.
pub fn blocking_keys(s: &str) -> Vec<String> {
    let mut keys = Vec::new();
    blocking_keys_into(s, &mut keys);
    keys
}

/// [`blocking_keys`] into a caller-owned buffer — the index hot path calls
/// this once per value and reuses the buffer (and its string allocations do
/// not pile up per value). The buffer is cleared first; the result is the
/// same sorted, deduplicated key list `blocking_keys` returns.
pub fn blocking_keys_into(s: &str, keys: &mut Vec<String>) {
    keys.clear();
    keys.extend(tokens(s));
    if keys.len() <= 2 {
        keys.extend(trigrams(s));
    }
    keys.sort();
    keys.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_collapses_punctuation() {
        assert_eq!(
            normalize("Star Wars: Episode IV - 1977"),
            "star wars episode iv 1977"
        );
        assert_eq!(normalize("  A--B  "), "a b");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn tokens_split_on_whitespace() {
        assert_eq!(tokens("Star Wars: IV"), vec!["star", "wars", "iv"]);
        assert!(tokens("???").is_empty());
    }

    #[test]
    fn trigrams_of_short_strings() {
        assert_eq!(trigrams("ab"), vec!["ab".to_string()]);
        assert_eq!(trigrams("abcd"), vec!["abc".to_string(), "bcd".to_string()]);
        assert!(trigrams("").is_empty());
    }

    #[test]
    fn blocking_keys_are_deduplicated_and_sorted() {
        let keys = blocking_keys("J. Smth");
        assert!(keys.contains(&"smth".to_string()));
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn buffered_blocking_keys_equal_the_allocating_form() {
        let mut buf = vec!["stale leftover".to_string()];
        for s in ["J. Smth", "Star Wars: Episode IV - 1977", "", "ab", "a a a"] {
            blocking_keys_into(s, &mut buf);
            assert_eq!(buf, blocking_keys(s), "{s:?}");
        }
    }
}
