//! Incremental maintenance of a built [`SimilarityIndex`] under streaming
//! column deltas.
//!
//! A [`MaintainedIndex`] wraps a built index together with the construction
//! state a rebuild would otherwise have to recompute — right-side
//! [`SimProfile`]s, the inverted blocking postings, and per-right
//! back-references to every left value storing it — and repairs the index
//! in place when distinct values appear in or disappear from either column.
//! The contract is *exact equality*: after any sequence of
//! [`ColumnDelta`]s, [`MaintainedIndex::index`] is `==` (entry for entry,
//! score bits included) to a fresh [`SimilarityIndex::build`] over the
//! mutated columns. The differential suite
//! (`crates/similarity/tests/delta_oracle.rs`) pins that against both a
//! fresh build and the brute-force all-pairs reference.
//!
//! Why the repairs are exact:
//!
//! * Every stored forward list is "all qualifying rights, sorted by
//!   (score desc, value asc), truncated to `top_k`". An *unfull* list
//!   therefore holds **all** qualifying rights — removing a member is a
//!   pure deletion, nothing can have been displaced. A *full* list that
//!   loses a member may have displaced something at build time, so it is
//!   tombstoned and refilled with one bounded re-scan
//!   (`score_one_left`, the same funnel construction uses).
//! * A newly appeared right value can only enter lists of left values it
//!   shares a blocking key with (construction never scores other pairs
//!   either), so candidates come from a left-side blocking map and each is
//!   patched with one targeted [`SimilarityOperator::score_profiles_at_least`]
//!   call at the exact "reach" requirement the builder uses.
//! * Reverse lists are a pure function of the truncated forward map
//!   (transpose, sort, truncate), so the lists of rights whose storers
//!   changed are regenerated from the back-references.
//!
//! None of the repair paths calls [`SimilarityIndex::build`], so
//! [`SimilarityIndex::build_count`] is unaffected — tests can pin that a
//! streaming engine never rebuilds.
//!
//! [`SimilarityOperator::score_profiles_at_least`]:
//! crate::combined::SimilarityOperator::score_profiles_at_least

use std::collections::{HashMap, HashSet};

use dlearn_relstore::Sym;

use crate::index::{build_postings, dedup, score_one_left, sort_matches, Posting, Scratch};
use crate::sw_kernel::SimProfile;
use crate::tokenize::blocking_keys;
use crate::{IndexConfig, Match, SimilarityIndex};

/// Distinct-value transitions of the two columns of one maintained index.
///
/// The members are *presence* transitions, not tuple counts: a value
/// belongs in `removed_*` only when its last occurrence left the column,
/// and in `added_*` only when its first occurrence arrived. Values already
/// present (for adds) or absent (for removes) are ignored.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnDelta {
    /// Values newly appearing in the left column.
    pub added_left: Vec<Sym>,
    /// Values that vanished from the left column.
    pub removed_left: Vec<Sym>,
    /// Values newly appearing in the right column.
    pub added_right: Vec<Sym>,
    /// Values that vanished from the right column.
    pub removed_right: Vec<Sym>,
}

impl ColumnDelta {
    /// `true` when no value changed on either side.
    pub fn is_empty(&self) -> bool {
        self.added_left.is_empty()
            && self.removed_left.is_empty()
            && self.added_right.is_empty()
            && self.removed_right.is_empty()
    }
}

/// Counters and changed-value sets of one [`MaintainedIndex::apply`] call.
#[derive(Debug, Clone, Default)]
pub struct DeltaOutcome {
    /// Left values whose stored match list changed (including lists that
    /// vanished). Probes of any *other* left value return exactly what
    /// they returned before the delta.
    pub changed_left: HashSet<Sym>,
    /// Right values whose stored match list changed.
    pub changed_right: HashSet<Sym>,
    /// Full bounded re-scans (`score_one_left`) run: added left values plus
    /// full forward lists that lost a member (tombstone-then-refill).
    pub rescored_lefts: usize,
    /// Targeted single-pair patches: entries removed from unfull lists plus
    /// bounded insertions of newly appeared right values.
    pub patched_entries: usize,
}

impl DeltaOutcome {
    /// `true` when the delta left every stored entry untouched.
    pub fn is_noop(&self) -> bool {
        self.changed_left.is_empty() && self.changed_right.is_empty()
    }
}

/// A [`SimilarityIndex`] plus the state needed to repair it incrementally.
///
/// Obtained by [`adopting`](MaintainedIndex::adopt) a built index (cheap:
/// profiles and postings are recomputed, but no alignment runs), then fed
/// [`ColumnDelta`]s as the underlying columns mutate.
#[derive(Debug, Clone)]
pub struct MaintainedIndex {
    config: IndexConfig,
    index: SimilarityIndex,
    /// Right slot table. Slots of removed values are tombstoned (left
    /// stale, excluded from every posting) rather than shifted; slot
    /// numbering is never observable in the index contents.
    right: Vec<Sym>,
    right_profiles: Vec<SimProfile>,
    /// Alive right value -> slot.
    right_pos: HashMap<Sym, u32>,
    /// Inverted blocking postings over right slots, patched in place.
    block: HashMap<Sym, Posting>,
    /// Alive left values.
    left_alive: HashSet<Sym>,
    /// Blocking key -> alive left values sharing it. Keyed by raw strings,
    /// not interned keys: left-only blocking keys must stay out of the
    /// process-global intern table, exactly as in `build`.
    left_block: HashMap<String, Vec<Sym>>,
    /// Right value -> every left value whose *stored* (truncated) forward
    /// list contains it. The reverse match lists are themselves truncated
    /// to `top_k`, so they cannot serve as back-references.
    storers: HashMap<Sym, HashSet<Sym>>,
}

impl MaintainedIndex {
    /// Wrap a built index for incremental maintenance. `left` and `right`
    /// must be the columns the index was built from (duplicates are fine —
    /// they dedup exactly as `build` dedups). Recomputes profiles, postings
    /// and back-references; runs no alignment and does not touch
    /// [`SimilarityIndex::build_count`].
    pub fn adopt(index: SimilarityIndex, left: &[Sym], right: &[Sym], config: IndexConfig) -> Self {
        let left = dedup(left);
        let right = dedup(right);
        let (right_profiles, block) = build_postings(&right, &config);
        let right_pos: HashMap<Sym, u32> = right
            .iter()
            .enumerate()
            .map(|(j, &r)| (r, j as u32))
            .collect();
        let mut left_block: HashMap<String, Vec<Sym>> = HashMap::new();
        for &l in &left {
            for key in blocking_keys(l.as_str()) {
                left_block.entry(key).or_default().push(l);
            }
        }
        let mut storers: HashMap<Sym, HashSet<Sym>> = HashMap::new();
        for (l, matches) in index.iter_left() {
            for m in matches {
                storers.entry(m.value).or_default().insert(l);
            }
        }
        MaintainedIndex {
            config,
            index,
            right,
            right_profiles,
            right_pos,
            block,
            left_alive: left.into_iter().collect(),
            left_block,
            storers,
        }
    }

    /// The maintained index, always equal to a fresh build on the current
    /// columns.
    pub fn index(&self) -> &SimilarityIndex {
        &self.index
    }

    /// The maintenance configuration (identical to the build config).
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Apply one batch of distinct-value column transitions, repairing the
    /// index in place. Returns what changed and how much work each repair
    /// path did.
    pub fn apply(&mut self, delta: &ColumnDelta) -> DeltaOutcome {
        let mut out = DeltaOutcome::default();
        // Lefts whose full forward list lost a member, plus added lefts:
        // re-scored once against the *final* postings after all structural
        // changes below.
        let mut rescore: HashSet<Sym> = HashSet::new();
        // Rights whose reverse list must be regenerated from back-refs.
        let mut dirty_rights: HashSet<Sym> = HashSet::new();
        // Newly appeared rights, patched into candidate lefts after the
        // rescores (rescored lefts already see them through the postings).
        let mut fresh_rights: Vec<(Sym, u32)> = Vec::new();

        // ---- structural phase: patch postings and membership maps ----

        for &l in &delta.removed_left {
            if !self.left_alive.remove(&l) {
                continue;
            }
            for key in blocking_keys(l.as_str()) {
                if let Some(lefts) = self.left_block.get_mut(&key) {
                    lefts.retain(|&x| x != l);
                    if lefts.is_empty() {
                        self.left_block.remove(&key);
                    }
                }
            }
            rescore.remove(&l);
            out.changed_left.insert(l);
            if let Some(old) = self.index.left_to_right.remove(&l) {
                for m in &old {
                    self.unstore(m.value, l, &mut dirty_rights);
                }
            }
        }

        for &l in &delta.added_left {
            if !self.left_alive.insert(l) {
                continue;
            }
            for key in blocking_keys(l.as_str()) {
                self.left_block.entry(key).or_default().push(l);
            }
            rescore.insert(l);
        }

        for &r in &delta.removed_right {
            let Some(j) = self.right_pos.remove(&r) else {
                continue;
            };
            remove_from_postings(&mut self.block, r, j);
            dirty_rights.insert(r);
            let Some(storing) = self.storers.remove(&r) else {
                continue;
            };
            for l in storing {
                if !self.left_alive.contains(&l) {
                    continue;
                }
                let Some(matches) = self.index.left_to_right.get_mut(&l) else {
                    continue;
                };
                out.changed_left.insert(l);
                if matches.len() == self.config.top_k {
                    // The build may have displaced a qualifying right in
                    // favor of `r`: tombstone-then-refill.
                    rescore.insert(l);
                } else {
                    // An unfull list holds *all* qualifying rights, so the
                    // removal alone is exact.
                    matches.retain(|m| m.value != r);
                    if matches.is_empty() {
                        self.index.left_to_right.remove(&l);
                    }
                    out.patched_entries += 1;
                }
            }
        }

        for &r in &delta.added_right {
            if self.right_pos.contains_key(&r) {
                continue;
            }
            let j = self.right.len() as u32;
            self.right.push(r);
            self.right_profiles.push(SimProfile::new(r.as_str()));
            self.right_pos.insert(r, j);
            insert_into_postings(&mut self.block, r, j, &self.right_profiles[j as usize]);
            fresh_rights.push((r, j));
        }

        // ---- scoring phase: bounded re-scans against final postings ----

        let mut scratch = Scratch::new(self.right.len());
        // Rescored lefts score against the final postings (fresh rights
        // included), so the targeted patching below must skip exactly them —
        // and only them.
        let rescored_set = rescore.clone();
        let mut rescore: Vec<Sym> = rescore.into_iter().collect();
        rescore.sort();
        for l in rescore {
            out.rescored_lefts += 1;
            out.changed_left.insert(l);
            let fresh = score_one_left(
                l,
                &self.right,
                &self.right_profiles,
                &self.block,
                &self.config,
                &mut scratch,
            );
            if let Some(old) = self.index.left_to_right.remove(&l) {
                for m in &old {
                    self.unstore(m.value, l, &mut dirty_rights);
                }
            }
            for m in &fresh {
                self.storers.entry(m.value).or_default().insert(l);
                dirty_rights.insert(m.value);
            }
            if !fresh.is_empty() {
                self.index.left_to_right.insert(l, fresh);
            }
        }

        // Targeted insertion of fresh rights into the lists of lefts that
        // share a blocking key (no other left can store them — construction
        // never scores key-disjoint pairs either). Lefts rescored above
        // already saw the fresh rights through the patched postings.
        for (r, j) in fresh_rights {
            let mut candidates: Vec<Sym> = Vec::new();
            let mut seen: HashSet<Sym> = HashSet::new();
            for key in blocking_keys(r.as_str()) {
                for &l in self.left_block.get(&key).into_iter().flatten() {
                    if seen.insert(l) && !rescored_set.contains(&l) {
                        candidates.push(l);
                    }
                }
            }
            candidates.sort();
            for l in candidates {
                if self.try_insert_pair(l, r, j, &mut dirty_rights, &mut out) {
                    out.changed_left.insert(l);
                }
            }
        }

        // ---- reverse phase: regenerate dirty reverse lists ----

        let mut dirty: Vec<Sym> = dirty_rights.into_iter().collect();
        dirty.sort();
        for r in dirty {
            out.changed_right.insert(r);
            match self.storers.get(&r) {
                Some(storing) if !storing.is_empty() => {
                    let mut back: Vec<Match> = storing
                        .iter()
                        .map(|&l| Match {
                            value: l,
                            score: self.stored_score(l, r),
                        })
                        .collect();
                    sort_matches(&mut back);
                    back.truncate(self.config.top_k);
                    self.index.right_to_left.insert(r, back);
                }
                _ => {
                    self.index.right_to_left.remove(&r);
                    self.storers.remove(&r);
                }
            }
        }

        out
    }

    /// Score one candidate (left, fresh right) pair at the exact "reach"
    /// requirement and insert it into the bounded forward list if it
    /// qualifies. Returns `true` when the list changed.
    fn try_insert_pair(
        &mut self,
        l: Sym,
        r: Sym,
        j: u32,
        dirty_rights: &mut HashSet<Sym>,
        out: &mut DeltaOutcome,
    ) -> bool {
        if self.config.top_k == 0 {
            return false;
        }
        let op = &self.config.operator;
        let current_len = self.index.left_to_right.get(&l).map_or(0, Vec::len);
        // A tie with the running k-th score can still displace on the value
        // order, so the requirement is "reach", exactly as in the builder.
        let required = if current_len == self.config.top_k {
            self.index.left_to_right[&l][self.config.top_k - 1]
                .score
                .max(op.threshold)
        } else {
            op.threshold
        };
        let left_profile = SimProfile::new(l.as_str());
        let Some(score) =
            op.score_profiles_at_least(&left_profile, &self.right_profiles[j as usize], required)
        else {
            return false;
        };
        if score < op.threshold {
            return false;
        }
        let m = Match { value: r, score };
        let mut displaced = None;
        {
            let matches = self.index.left_to_right.entry(l).or_default();
            let pos = matches.partition_point(|held| {
                held.score > m.score || (held.score == m.score && held.value < m.value)
            });
            if pos >= self.config.top_k {
                let created_empty = matches.is_empty();
                if created_empty {
                    self.index.left_to_right.remove(&l);
                }
                return false;
            }
            if matches.len() == self.config.top_k {
                displaced = Some(matches.pop().expect("full list").value);
            }
            matches.insert(pos, m);
        }
        if let Some(d) = displaced {
            self.unstore(d, l, dirty_rights);
        }
        self.storers.entry(r).or_default().insert(l);
        dirty_rights.insert(r);
        out.patched_entries += 1;
        true
    }

    /// Drop `l` from `r`'s back-references and mark `r` dirty.
    fn unstore(&mut self, r: Sym, l: Sym, dirty_rights: &mut HashSet<Sym>) {
        if let Some(s) = self.storers.get_mut(&r) {
            s.remove(&l);
        }
        dirty_rights.insert(r);
    }

    /// The score `l`'s stored forward list holds for `r`.
    fn stored_score(&self, l: Sym, r: Sym) -> f64 {
        self.index
            .left_to_right
            .get(&l)
            .and_then(|ms| ms.iter().find(|m| m.value == r))
            .map(|m| m.score)
            .expect("back-reference without a stored forward match")
    }
}

/// Remove right slot `j` (holding value `r`) from every posting of `r`'s
/// blocking keys.
fn remove_from_postings(block: &mut HashMap<Sym, Posting>, r: Sym, j: u32) {
    for key in blocking_keys(r.as_str()) {
        let Some(key) = Sym::lookup(&key) else {
            continue;
        };
        let empty = match block.get_mut(&key) {
            Some(Posting::Cold(ids)) => {
                ids.retain(|&x| x != j);
                ids.is_empty()
            }
            Some(Posting::Hot(by_len)) => {
                by_len.retain(|&(_, x)| x != j);
                by_len.is_empty()
            }
            None => false,
        };
        if empty {
            block.remove(&key);
        }
    }
}

/// Add right slot `j` (holding value `r`) to the postings of `r`'s blocking
/// keys, preserving each posting's internal order. New keys start cold; a
/// key's hot/cold status never affects index contents (the hot window only
/// skips candidates that provably fail the length bound), so statuses are
/// not rebalanced on delta.
fn insert_into_postings(block: &mut HashMap<Sym, Posting>, r: Sym, j: u32, profile: &SimProfile) {
    for key in blocking_keys(r.as_str()) {
        match block
            .entry(Sym::intern(key))
            .or_insert_with(|| Posting::Cold(Vec::new()))
        {
            Posting::Cold(ids) => ids.push(j),
            Posting::Hot(by_len) => {
                let entry = (profile.len() as u32, j);
                let pos = by_len.partition_point(|&e| e < entry);
                by_len.insert(pos, entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimilarityOperator;

    fn syms(values: &[&str]) -> Vec<Sym> {
        values.iter().map(Sym::intern).collect()
    }

    fn config(top_k: usize, threshold: f64) -> IndexConfig {
        IndexConfig {
            top_k,
            operator: SimilarityOperator::with_threshold(threshold),
            threads: 1,
            ..IndexConfig::default()
        }
    }

    fn check_equals_fresh(m: &MaintainedIndex, left: &[Sym], right: &[Sym]) {
        let fresh = SimilarityIndex::build(left, right, &m.config);
        assert_eq!(
            m.index(),
            &fresh,
            "maintained index diverged from fresh build"
        );
    }

    #[test]
    fn adopt_then_empty_delta_is_noop() {
        let left = syms(&["golden harbor", "silent meadow"]);
        let right = syms(&["golden harbor (1984)", "silent meadow remastered"]);
        let cfg = config(3, 0.6);
        let built = SimilarityIndex::build(&left, &right, &cfg);
        let mut m = MaintainedIndex::adopt(built.clone(), &left, &right, cfg);
        let out = m.apply(&ColumnDelta::default());
        assert!(out.is_noop());
        assert_eq!(m.index(), &built);
    }

    #[test]
    fn right_insert_and_remove_round_trip() {
        let left = syms(&["golden harbor", "silent meadow", "crimson summit"]);
        let right = syms(&["golden harbor (1984)", "silent meadow remastered"]);
        let cfg = config(2, 0.6);
        let built = SimilarityIndex::build(&left, &right, &cfg);
        let mut m = MaintainedIndex::adopt(built.clone(), &left, &right, cfg.clone());

        let newcomer = Sym::intern("crimson summit directors cut");
        let out = m.apply(&ColumnDelta {
            added_right: vec![newcomer],
            ..ColumnDelta::default()
        });
        let mut right_now: Vec<Sym> = right.clone();
        right_now.push(newcomer);
        check_equals_fresh(&m, &left, &right_now);
        assert!(out.changed_right.contains(&newcomer));
        assert_eq!(out.rescored_lefts, 0, "a right insert needs no rescans");

        let out = m.apply(&ColumnDelta {
            removed_right: vec![newcomer],
            ..ColumnDelta::default()
        });
        check_equals_fresh(&m, &left, &right);
        assert!(!out.is_noop());
        assert_eq!(m.index(), &built, "round trip must restore the index");
    }

    #[test]
    fn left_insert_and_remove_round_trip() {
        let left = syms(&["golden harbor", "silent meadow"]);
        let right = syms(&[
            "golden harbor (1984)",
            "silent meadow remastered",
            "crimson summit unrated",
        ]);
        let cfg = config(2, 0.6);
        let built = SimilarityIndex::build(&left, &right, &cfg);
        let mut m = MaintainedIndex::adopt(built.clone(), &left, &right, cfg.clone());

        let newcomer = Sym::intern("crimson summit");
        let out = m.apply(&ColumnDelta {
            added_left: vec![newcomer],
            ..ColumnDelta::default()
        });
        let mut left_now = left.clone();
        left_now.push(newcomer);
        check_equals_fresh(&m, &left_now, &right);
        assert_eq!(out.rescored_lefts, 1);

        m.apply(&ColumnDelta {
            removed_left: vec![newcomer],
            ..ColumnDelta::default()
        });
        assert_eq!(m.index(), &built);
    }

    #[test]
    fn removing_a_stored_right_from_a_full_list_refills() {
        // top_k = 1 forces every stored list full, so removing the stored
        // match must trigger the tombstone-then-refill path and surface the
        // runner-up.
        let left = syms(&["golden harbor"]);
        let right = syms(&["golden harbor (1984)", "golden harbor unrated"]);
        let cfg = config(1, 0.5);
        let built = SimilarityIndex::build(&left, &right, &cfg);
        let stored = built.matches_left("golden harbor")[0].value;
        let mut m = MaintainedIndex::adopt(built, &left, &right, cfg);
        let out = m.apply(&ColumnDelta {
            removed_right: vec![stored],
            ..ColumnDelta::default()
        });
        assert_eq!(out.rescored_lefts, 1, "full list must refill via rescan");
        let survivors: Vec<Sym> = right.iter().copied().filter(|&r| r != stored).collect();
        check_equals_fresh(&m, &left, &survivors);
        assert_eq!(m.index().matches_left("golden harbor").len(), 1);
    }

    #[test]
    fn unrelated_values_never_change() {
        let left = syms(&["golden harbor", "distant voyage"]);
        let right = syms(&["golden harbor (1984)", "distant voyage unrated"]);
        let cfg = config(3, 0.6);
        let built = SimilarityIndex::build(&left, &right, &cfg);
        let mut m = MaintainedIndex::adopt(built, &left, &right, cfg);
        let out = m.apply(&ColumnDelta {
            added_right: vec![Sym::intern("golden harbor remastered")],
            ..ColumnDelta::default()
        });
        assert!(
            !out.changed_left.contains(&Sym::intern("distant voyage")),
            "{out:?}"
        );
        assert!(
            !out.changed_right
                .contains(&Sym::intern("distant voyage unrated")),
            "{out:?}"
        );
    }
}
