//! Length similarity: ratio of the shorter to the longer string length —
//! plus the character-histogram machinery of the index's size filter.

use crate::tokenize::normalize;

/// Number of bins of a [`char_histogram`]: `a`–`z`, `0`–`9`, space, other.
pub const HIST_BINS: usize = 38;

/// A character multiset histogram over a *normalized* string.
///
/// ASCII letters and digits and the space get their own bin; every other
/// character (non-ASCII alphanumerics survive normalization) is lumped into
/// one bin. Lumping can only *overcount* a multiset intersection, which
/// keeps bounds derived from [`common_char_count`] sound.
pub fn char_histogram(normalized: &str) -> [u32; HIST_BINS] {
    let mut hist = [0u32; HIST_BINS];
    for c in normalized.chars() {
        hist[char_bin(c)] += 1;
    }
    hist
}

/// Bin index of a character under the [`char_histogram`] scheme. Exposed so
/// the bit-parallel kernel can build its per-value match masks over the
/// *same* lumped alphabet: two characters compare equal at the mask level
/// whenever they share a bin, which — like the histogram intersection — can
/// only overcount real matches, the sound direction for upper bounds.
pub fn char_bin(c: char) -> usize {
    match c {
        'a'..='z' => c as usize - 'a' as usize,
        '0'..='9' => 26 + (c as usize - '0' as usize),
        ' ' => 36,
        _ => 37,
    }
}

/// Size of the character multiset intersection of two histograms: an upper
/// bound on the number of equal-character matches any alignment of the two
/// strings can contain.
pub fn common_char_count(a: &[u32; HIST_BINS], b: &[u32; HIST_BINS]) -> u32 {
    a.iter().zip(b).map(|(&x, &y)| x.min(y)).sum()
}

/// Length similarity of two raw strings in `[0, 1]`.
///
/// The paper defines it as the length of the smaller string divided by the
/// length of the larger string; we compute it on normalized strings so that
/// punctuation-only differences do not count.
pub fn length_similarity(a: &str, b: &str) -> f64 {
    length_similarity_from_counts(normalize(a).chars().count(), normalize(b).chars().count())
}

/// Length similarity computed directly from two *normalized* char counts.
///
/// This is the exact computation [`length_similarity`] performs after
/// normalizing — exposed separately so index construction can precompute each
/// value's normalized length once and derive score bounds for whole candidate
/// lists without re-normalizing (see
/// [`crate::combined::SimilarityOperator::max_score_bound`]).
pub fn length_similarity_from_counts(la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    let (min, max) = if la < lb { (la, lb) } else { (lb, la) };
    min as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_lengths_score_one() {
        assert_eq!(length_similarity("abcd", "wxyz"), 1.0);
        assert_eq!(length_similarity("", ""), 1.0);
    }

    #[test]
    fn empty_vs_nonempty_scores_zero() {
        assert_eq!(length_similarity("", "abc"), 0.0);
    }

    #[test]
    fn ratio_of_lengths() {
        assert!((length_similarity("ab", "abcd") - 0.5).abs() < 1e-12);
        assert!((length_similarity("abcd", "ab") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalization_applies_before_measuring() {
        // "a--b" normalizes to "a b" (3 chars), same as "a b".
        assert_eq!(length_similarity("a--b", "a b"), 1.0);
    }

    #[test]
    fn counts_form_agrees_with_string_form() {
        use crate::tokenize::normalize;
        let cases = [
            ("", ""),
            ("", "abc"),
            ("ab", "abcd"),
            ("Star Wars", "Star Wars: Episode IV - 1977"),
            ("?!|", "a"),
            ("ééé", "ee"),
        ];
        for (a, b) in cases {
            let la = normalize(a).chars().count();
            let lb = normalize(b).chars().count();
            assert_eq!(
                length_similarity(a, b),
                length_similarity_from_counts(la, lb),
                "({a:?}, {b:?})"
            );
        }
    }

    #[test]
    fn histogram_counts_characters_with_multiplicity() {
        let h = char_histogram("star wars 1977");
        assert_eq!(h[char_bin('s')], 2);
        assert_eq!(h[char_bin('a')], 2);
        assert_eq!(h[char_bin('r')], 2);
        assert_eq!(h[char_bin('9')], 1);
        assert_eq!(h[char_bin('7')], 2);
        assert_eq!(h[char_bin(' ')], 2);
        assert_eq!(h.iter().sum::<u32>(), 14);
    }

    #[test]
    fn common_count_is_the_multiset_intersection() {
        let a = char_histogram("abca");
        let b = char_histogram("aabd");
        // common: a (min(2,2)=2), b (1); c, d don't overlap.
        assert_eq!(common_char_count(&a, &b), 3);
        assert_eq!(common_char_count(&a, &a), 4);
        assert_eq!(common_char_count(&a, &char_histogram("")), 0);
    }

    #[test]
    fn non_ascii_characters_share_the_lumped_bin() {
        // Distinct non-ASCII chars lump together: the intersection may
        // overcount (é vs ü), never undercount — the sound direction.
        let a = char_histogram("é");
        let b = char_histogram("ü");
        assert_eq!(common_char_count(&a, &b), 1);
    }

    #[test]
    fn counts_form_is_symmetric_and_bounded() {
        for la in 0..20usize {
            for lb in 0..20usize {
                let s = length_similarity_from_counts(la, lb);
                assert!((0.0..=1.0).contains(&s), "({la}, {lb}) = {s}");
                assert_eq!(s, length_similarity_from_counts(lb, la));
            }
        }
    }
}
