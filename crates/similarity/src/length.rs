//! Length similarity: ratio of the shorter to the longer string length.

use crate::tokenize::normalize;

/// Length similarity of two raw strings in `[0, 1]`.
///
/// The paper defines it as the length of the smaller string divided by the
/// length of the larger string; we compute it on normalized strings so that
/// punctuation-only differences do not count.
pub fn length_similarity(a: &str, b: &str) -> f64 {
    let la = normalize(a).chars().count();
    let lb = normalize(b).chars().count();
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    let (min, max) = if la < lb { (la, lb) } else { (lb, la) };
    min as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_lengths_score_one() {
        assert_eq!(length_similarity("abcd", "wxyz"), 1.0);
        assert_eq!(length_similarity("", ""), 1.0);
    }

    #[test]
    fn empty_vs_nonempty_scores_zero() {
        assert_eq!(length_similarity("", "abc"), 0.0);
    }

    #[test]
    fn ratio_of_lengths() {
        assert!((length_similarity("ab", "abcd") - 0.5).abs() < 1e-12);
        assert!((length_similarity("abcd", "ab") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalization_applies_before_measuring() {
        // "a--b" normalizes to "a b" (3 chars), same as "a b".
        assert_eq!(length_similarity("a--b", "a b"), 1.0);
    }
}
