//! The combined similarity operator used by DLearn.
//!
//! Section 5 of the paper: *"To implement similarity over strings, DLearn
//! uses the operator defined as the average of the Smith-Waterman-Gotoh and
//! the Length similarity functions."*

use crate::length::{length_similarity, length_similarity_from_counts};
use crate::sw_gotoh::{
    swg_similarity_normalized_chars, swg_similarity_normalized_chars_at_least, swg_similarity_with,
    SwgParams, ABANDON_SLACK,
};
use crate::sw_kernel::{aligned_match_upper_bound, swg_similarity_banded_at_least, SimProfile};

/// A configurable string-similarity operator with a decision threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityOperator {
    /// Parameters of the Smith-Waterman-Gotoh component.
    pub swg: SwgParams,
    /// Two strings are considered *similar* (`a ≈ b`) when their combined
    /// score is at least this threshold.
    pub threshold: f64,
}

impl Default for SimilarityOperator {
    fn default() -> Self {
        // The threshold is calibrated so that an entity name matches its
        // decorated variants in the other source (e.g. "Star Wars" vs
        // "Star Wars: Episode IV - 1977", where the length component pulls
        // the average down) while unrelated names stay below it.
        SimilarityOperator {
            swg: SwgParams::default(),
            threshold: 0.65,
        }
    }
}

impl SimilarityOperator {
    /// Operator with a custom decision threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        SimilarityOperator {
            threshold,
            ..SimilarityOperator::default()
        }
    }

    /// Combined similarity score of two strings in `[0, 1]`.
    pub fn score(&self, a: &str, b: &str) -> f64 {
        let swg = swg_similarity_with(a, b, &self.swg);
        let len = length_similarity(a, b);
        (swg + len) / 2.0
    }

    /// Combined score of two **already-normalized** char slices —
    /// bit-identical to [`SimilarityOperator::score`] on the raw strings
    /// they were normalized from. Index construction normalizes each value
    /// once and scores every candidate pair through this path.
    pub fn score_normalized_chars(&self, a: &[char], b: &[char]) -> f64 {
        let swg = swg_similarity_normalized_chars(a, b, &self.swg);
        let len = length_similarity_from_counts(a.len(), b.len());
        (swg + len) / 2.0
    }

    /// Like [`Self::score_normalized_chars`], but abandons the alignment as
    /// soon as the combined score provably cannot reach `required` and
    /// returns `None` ("strictly below `required`"). A `Some` score is
    /// bit-identical to the exhaustive path. Index construction passes the
    /// running k-th score here, so hopeless candidates pay for a prefix of
    /// the dynamic program instead of all of it.
    pub fn score_normalized_chars_at_least(
        &self,
        a: &[char],
        b: &[char],
        required: f64,
    ) -> Option<f64> {
        let len = length_similarity_from_counts(a.len(), b.len());
        // combined = (swg + len) / 2 >= required  ⟺  swg >= 2·required - len;
        // the translation's roundings are covered by the abandon slack.
        let required_swg = 2.0 * required - len;
        let swg = swg_similarity_normalized_chars_at_least(a, b, &self.swg, required_swg)?;
        Some((swg + len) / 2.0)
    }

    /// The `≈` predicate: whether two strings are similar under the
    /// operator's threshold.
    pub fn similar(&self, a: &str, b: &str) -> bool {
        self.score(a, b) >= self.threshold
    }

    /// Upper bound on [`SimilarityOperator::score`] for any pair of strings
    /// whose *normalized* char counts are `left_len` and `right_len`.
    ///
    /// The combined score averages the Smith-Waterman-Gotoh similarity
    /// (clamped to `[0, 1]`, so at most `1`) with the length similarity,
    /// which depends only on the two normalized lengths. Hence
    ///
    /// ```text
    /// score(a, b) = (swg + len) / 2  <=  (1 + len(|a|, |b|)) / 2
    /// ```
    ///
    /// and when exactly one side is empty, both components are `0`, so the
    /// bound is `0`. The inequality holds in floating point too: `swg` is
    /// clamped to at most `1.0` and `x ↦ (x + len) / 2` is monotone under
    /// IEEE-754 addition and division. The bound is *tight*: a prefix pair
    /// (`"abcd"` vs `"abcdefgh"`) has `swg = 1` and attains it exactly.
    ///
    /// Index construction uses this to skip `score` calls for pairs that
    /// provably cannot reach `threshold` (see
    /// [`crate::index::SimilarityIndex::build`]): skipping is lossless
    /// because `bound < threshold` implies `score < threshold`.
    pub fn max_score_bound(&self, left_len: usize, right_len: usize) -> f64 {
        if left_len == 0 || right_len == 0 {
            // Both components vanish against an empty normalized string,
            // except for the both-empty case where both are 1.
            return if left_len == right_len { 1.0 } else { 0.0 };
        }
        (1.0 + length_similarity_from_counts(left_len, right_len)) / 2.0
    }

    /// Tighter upper bound on the score given, additionally, the size of
    /// the two strings' character multiset intersection (`common`, from
    /// [`crate::length::common_char_count`]).
    ///
    /// Every cell of the SWG dynamic program adds at most `match_score` and
    /// only for a pair of *equal* characters, so the best local score is at
    /// most `match_score · common` whenever mismatches and gaps cannot add
    /// score (`mismatch_score <= 0`, non-negative gap costs — true for the
    /// shipped parameters). Hence
    ///
    /// ```text
    /// swg(a, b) <= min(1, common / min(|a|, |b|))
    /// ```
    ///
    /// and the combined bound averages that with the exact length
    /// similarity. Both divisions are single correctly-rounded IEEE-754
    /// operations over exactly-representable integers, so the inequality
    /// survives floating point. With score-increasing custom parameters the
    /// SWG half falls back to `1`, degrading to [`Self::max_score_bound`]
    /// rather than turning unsound.
    pub fn max_score_bound_with_common(
        &self,
        left_len: usize,
        right_len: usize,
        common: u32,
    ) -> f64 {
        self.score_bound_from_matches(left_len, right_len, common as f64)
    }

    /// Upper bound on the score given any upper bound `matches` on the
    /// number of equal-character pairs an alignment of the two strings can
    /// contain — the generalization behind both
    /// [`Self::max_score_bound_with_common`] (histogram intersection) and
    /// the bit-parallel gate (the binned-LCS bound from
    /// [`crate::sw_kernel::aligned_match_upper_bound`], which also accounts
    /// for character *order* and is therefore often much tighter on
    /// anagram-ish pairs). Soundness needs the same parameter shape as the
    /// histogram bound; otherwise the SWG half falls back to `1`.
    pub fn score_bound_from_matches(&self, left_len: usize, right_len: usize, matches: f64) -> f64 {
        if left_len == 0 || right_len == 0 {
            return if left_len == right_len { 1.0 } else { 0.0 };
        }
        let swg_bound = if self.swg.match_score > 0.0
            && self.swg.mismatch_score <= 0.0
            && self.swg.gap_open >= 0.0
            && self.swg.gap_extend >= 0.0
        {
            (matches / left_len.min(right_len) as f64).min(1.0)
        } else {
            1.0
        };
        (swg_bound + length_similarity_from_counts(left_len, right_len)) / 2.0
    }

    /// The profile-to-profile hot path of index construction: the
    /// bit-parallel match bound gates the pair, then the **banded** exact
    /// dynamic program scores it. Contract mirrors
    /// [`Self::score_normalized_chars_at_least`] — `None` means the combined
    /// score is strictly below `required`; a `Some` score is bit-identical
    /// to [`Self::score_normalized_chars`] on the same chars (the band and
    /// the gate only ever drop pairs that provably fall short). Pass
    /// `f64::NEG_INFINITY` to never abandon.
    pub fn score_profiles_at_least(
        &self,
        a: &SimProfile,
        b: &SimProfile,
        required: f64,
    ) -> Option<f64> {
        if required > f64::NEG_INFINITY {
            if let Some(matches) = aligned_match_upper_bound(a, b) {
                if self.score_bound_from_matches(a.len(), b.len(), matches)
                    < required - ABANDON_SLACK
                {
                    return None;
                }
            }
        }
        let len = length_similarity_from_counts(a.len(), b.len());
        let required_swg = if required > f64::NEG_INFINITY {
            2.0 * required - len
        } else {
            f64::NEG_INFINITY
        };
        let swg = swg_similarity_banded_at_least(&a.chars, &b.chars, &self.swg, required_swg)?;
        Some((swg + len) / 2.0)
    }
}

/// Convenience free function using the default operator.
pub fn combined_similarity(a: &str, b: &str) -> f64 {
    SimilarityOperator::default().score(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_score_one() {
        assert_eq!(combined_similarity("Superbad", "Superbad"), 1.0);
    }

    #[test]
    fn substring_with_extra_tokens_scores_between_swg_and_one() {
        let s = combined_similarity("Superbad", "Superbad (2007)");
        assert!(s > 0.7 && s < 1.0, "score {s}");
    }

    #[test]
    fn threshold_controls_the_similar_predicate() {
        let lenient = SimilarityOperator::with_threshold(0.5);
        let strict = SimilarityOperator::with_threshold(0.95);
        assert!(lenient.similar("Superbad", "Superbad 2007"));
        assert!(!strict.similar("Superbad", "Superbad 2007 director cut edition"));
    }

    #[test]
    fn unrelated_strings_are_not_similar() {
        let op = SimilarityOperator::default();
        assert!(!op.similar("Zoolander", "The Orphanage"));
    }

    #[test]
    fn score_is_symmetric() {
        let op = SimilarityOperator::default();
        assert!((op.score("abcd", "abce") - op.score("abce", "abcd")).abs() < 1e-12);
    }

    use crate::tokenize::normalize;

    fn norm_len(s: &str) -> usize {
        normalize(s).chars().count()
    }

    /// The bound invariant the length filter relies on: for *any* pair, the
    /// real score never exceeds `max_score_bound` of the normalized lengths.
    fn assert_bounded(op: &SimilarityOperator, a: &str, b: &str) {
        let score = op.score(a, b);
        let bound = op.max_score_bound(norm_len(a), norm_len(b));
        assert!(
            score <= bound,
            "score({a:?}, {b:?}) = {score} exceeds bound {bound}"
        );
    }

    #[test]
    fn bound_is_tight_for_prefix_pairs() {
        // A prefix aligns perfectly, so swg = 1 and the score *equals* the
        // bound — the bound cannot be lowered without pruning real matches.
        let op = SimilarityOperator::default();
        for (a, b) in [
            ("abcd", "abcdefgh"),
            ("star wars", "star wars episode iv 1977"),
            ("x", "xyxyxyxy"),
        ] {
            let score = op.score(a, b);
            let bound = op.max_score_bound(norm_len(a), norm_len(b));
            assert!(
                (score - bound).abs() < 1e-12,
                "prefix pair ({a:?}, {b:?}): score {score} != bound {bound}"
            );
            assert_bounded(&op, a, b);
        }
    }

    #[test]
    fn bound_at_and_just_below_the_threshold_boundary() {
        // With threshold t, a pair survives the filter iff
        // (1 + min/max) / 2 >= t, i.e. min/max >= 2t - 1. For t = 0.75 the
        // boundary ratio is 0.5: an (n, 2n) prefix pair sits exactly *at*
        // the boundary and must not be pruned; an (n, 2n + 1) pair sits just
        // below it and must be prunable.
        let op = SimilarityOperator::with_threshold(0.75);
        for n in [1usize, 2, 5, 13, 40] {
            let at = op.max_score_bound(n, 2 * n);
            assert!(
                at >= op.threshold,
                "boundary pair ({n}, {}) pruned: bound {at} < {}",
                2 * n,
                op.threshold
            );
            let below = op.max_score_bound(n, 2 * n + 1);
            assert!(
                below < op.threshold,
                "pair ({n}, {}) should fall below threshold: bound {below}",
                2 * n + 1
            );
        }
        // An actual string pair exactly at the boundary: prefix of half the
        // length scores exactly (1 + 0.5) / 2 = 0.75 = t.
        let score = op.score("abcd", "abcdefgh");
        assert!((score - 0.75).abs() < 1e-12, "score {score}");
        assert!(score >= op.threshold);
    }

    #[test]
    fn bound_handles_empty_strings() {
        let op = SimilarityOperator::default();
        // Both empty: identical under normalization, score = bound = 1.
        assert_eq!(op.max_score_bound(0, 0), 1.0);
        assert_eq!(op.score("", ""), 1.0);
        // One empty: both components are 0, and the bound knows it (the
        // naive (1 + 0) / 2 = 0.5 would be sound but needlessly loose).
        assert_eq!(op.max_score_bound(0, 7), 0.0);
        assert_eq!(op.max_score_bound(7, 0), 0.0);
        assert_bounded(&op, "", "abcdefg");
        assert_bounded(&op, "?!|", "abcdefg"); // normalizes to empty
    }

    #[test]
    fn bound_holds_for_identical_token_repetitions() {
        // All-identical-token values: maximal swg overlap at every length
        // ratio — the adversarial case for the swg <= 1 half of the bound.
        let op = SimilarityOperator::default();
        for reps_a in 1..=6usize {
            for reps_b in 1..=6usize {
                let a = vec!["echo"; reps_a].join(" ");
                let b = vec!["echo"; reps_b].join(" ");
                assert_bounded(&op, &a, &b);
                if reps_a == reps_b {
                    let bound = op.max_score_bound(norm_len(&a), norm_len(&b));
                    assert_eq!(bound, 1.0);
                    assert_eq!(op.score(&a, &b), 1.0);
                }
            }
        }
    }

    #[test]
    fn bound_holds_on_seeded_random_pairs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xb0bd);
        let alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 -!";
        let op = SimilarityOperator::default();
        for _ in 0..400 {
            let mut s = |max_len: usize| -> String {
                let len = rng.gen_range(0..max_len + 1);
                (0..len)
                    .map(|_| alphabet.as_bytes()[rng.gen_range(0..alphabet.len())] as char)
                    .collect()
            };
            let a = s(28);
            let b = s(28);
            assert_bounded(&op, &a, &b);
        }
    }

    use crate::length::{char_histogram, common_char_count};

    fn common_of(a: &str, b: &str) -> u32 {
        common_char_count(
            &char_histogram(&normalize(a)),
            &char_histogram(&normalize(b)),
        )
    }

    #[test]
    fn common_char_bound_is_sound_and_no_looser_than_the_length_bound() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xc0c0);
        // A small alphabet forces heavy char overlap, the adversarial case
        // for the common/min(|a|,|b|) half of the bound.
        let alphabet = "abcab ";
        let op = SimilarityOperator::default();
        for _ in 0..400 {
            let mut s = |max_len: usize| -> String {
                let len = rng.gen_range(0..max_len + 1);
                (0..len)
                    .map(|_| alphabet.as_bytes()[rng.gen_range(0..alphabet.len())] as char)
                    .collect()
            };
            let a = s(20);
            let b = s(20);
            let score = op.score(&a, &b);
            let tight =
                op.max_score_bound_with_common(norm_len(&a), norm_len(&b), common_of(&a, &b));
            let loose = op.max_score_bound(norm_len(&a), norm_len(&b));
            assert!(
                score <= tight,
                "score({a:?}, {b:?}) = {score} > tight bound {tight}"
            );
            assert!(
                tight <= loose,
                "tight bound {tight} above length bound {loose}"
            );
        }
    }

    #[test]
    fn common_char_bound_is_tight_for_identical_strings() {
        let op = SimilarityOperator::default();
        let s = "star wars";
        let bound = op.max_score_bound_with_common(norm_len(s), norm_len(s), common_of(s, s));
        assert_eq!(bound, 1.0);
        assert_eq!(op.score(s, s), 1.0);
    }

    #[test]
    fn common_char_bound_prunes_token_sharing_junk_the_length_bound_keeps() {
        // Two titles blocked together by a shared stopword-ish token but
        // otherwise unrelated: similar lengths (length bound useless), few
        // common chars (common bound decisive). This is the pair shape that
        // dominates large blocks, so the filter must catch it.
        let op = SimilarityOperator::default();
        let (a, b) = ("the golden harbor", "the mystic summit 1984");
        assert!(op.max_score_bound(norm_len(a), norm_len(b)) >= op.threshold);
        let tight = op.max_score_bound_with_common(norm_len(a), norm_len(b), common_of(a, b));
        assert!(
            tight < op.threshold,
            "common-char bound {tight} failed to prune the junk pair"
        );
        assert!(
            op.score(a, b) < op.threshold,
            "pair is genuinely below threshold"
        );
    }

    #[test]
    fn score_increasing_params_degrade_the_swg_half_to_one() {
        // A positive mismatch score breaks the "only equal chars add score"
        // argument; the bound must fall back to the plain length bound
        // instead of becoming unsound.
        let weird = SimilarityOperator {
            swg: SwgParams {
                mismatch_score: 0.5,
                ..SwgParams::default()
            },
            threshold: 0.65,
        };
        let (a, b) = ("abcdef", "uvwxyz");
        let tight = weird.max_score_bound_with_common(norm_len(a), norm_len(b), common_of(a, b));
        assert_eq!(tight, weird.max_score_bound(norm_len(a), norm_len(b)));
        assert!(weird.score(a, b) <= tight);
    }

    #[test]
    fn char_path_score_matches_string_path() {
        let op = SimilarityOperator::default();
        for (a, b) in [
            ("Superbad", "Superbad (2007)"),
            ("Star Wars", "The Orphanage"),
            ("", ""),
            ("?!|", "x"),
        ] {
            let ca: Vec<char> = normalize(a).chars().collect();
            let cb: Vec<char> = normalize(b).chars().collect();
            assert_eq!(
                op.score(a, b),
                op.score_normalized_chars(&ca, &cb),
                "({a:?}, {b:?})"
            );
        }
    }

    #[test]
    fn common_bound_is_the_matches_bound_at_the_integer_point() {
        let op = SimilarityOperator::default();
        for (ll, rl, common) in [(4usize, 8usize, 3u32), (10, 10, 10), (1, 30, 0), (0, 5, 0)] {
            assert_eq!(
                op.max_score_bound_with_common(ll, rl, common),
                op.score_bound_from_matches(ll, rl, common as f64),
                "({ll}, {rl}, {common})"
            );
        }
    }

    #[test]
    fn profile_path_matches_the_scalar_char_path() {
        // The full kernel chain (bit-parallel gate + banded DP) against the
        // scalar reference, on seeded random pairs and random requirements:
        // completed runs are bit-identical, abandons only hide scores that
        // are truly below the requirement.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x9f11);
        let alphabet = "abcdefgh 129";
        let op = SimilarityOperator::default();
        for _ in 0..600 {
            let mut s = |max_len: usize| -> String {
                let len = rng.gen_range(0..max_len + 1);
                (0..len)
                    .map(|_| alphabet.as_bytes()[rng.gen_range(0..alphabet.len())] as char)
                    .collect()
            };
            let a = s(24);
            let b = s(24);
            let pa = crate::sw_kernel::SimProfile::new(&a);
            let pb = crate::sw_kernel::SimProfile::new(&b);
            let exact = op.score_normalized_chars(&pa.chars, &pb.chars);
            let required = rng.gen_range(0.0..1.2);
            match op.score_profiles_at_least(&pa, &pb, required) {
                Some(v) => assert_eq!(v, exact, "({a:?}, {b:?}, required {required})"),
                None => assert!(
                    exact < required,
                    "kernel abandoned ({a:?}, {b:?}) at {required} but exact is {exact}"
                ),
            }
        }
    }

    #[test]
    fn profile_path_without_requirement_never_abandons() {
        let op = SimilarityOperator::default();
        for (a, b) in [("Superbad", "Superbad (2007)"), ("", ""), ("?!|", "x")] {
            let (pa, pb) = (
                crate::sw_kernel::SimProfile::new(a),
                crate::sw_kernel::SimProfile::new(b),
            );
            assert_eq!(
                op.score_profiles_at_least(&pa, &pb, f64::NEG_INFINITY),
                Some(op.score(a, b)),
                "({a:?}, {b:?})"
            );
        }
    }
}
