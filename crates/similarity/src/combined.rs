//! The combined similarity operator used by DLearn.
//!
//! Section 5 of the paper: *"To implement similarity over strings, DLearn
//! uses the operator defined as the average of the Smith-Waterman-Gotoh and
//! the Length similarity functions."*

use crate::length::length_similarity;
use crate::sw_gotoh::{swg_similarity_with, SwgParams};

/// A configurable string-similarity operator with a decision threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityOperator {
    /// Parameters of the Smith-Waterman-Gotoh component.
    pub swg: SwgParams,
    /// Two strings are considered *similar* (`a ≈ b`) when their combined
    /// score is at least this threshold.
    pub threshold: f64,
}

impl Default for SimilarityOperator {
    fn default() -> Self {
        // The threshold is calibrated so that an entity name matches its
        // decorated variants in the other source (e.g. "Star Wars" vs
        // "Star Wars: Episode IV - 1977", where the length component pulls
        // the average down) while unrelated names stay below it.
        SimilarityOperator {
            swg: SwgParams::default(),
            threshold: 0.65,
        }
    }
}

impl SimilarityOperator {
    /// Operator with a custom decision threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        SimilarityOperator {
            threshold,
            ..SimilarityOperator::default()
        }
    }

    /// Combined similarity score of two strings in `[0, 1]`.
    pub fn score(&self, a: &str, b: &str) -> f64 {
        let swg = swg_similarity_with(a, b, &self.swg);
        let len = length_similarity(a, b);
        (swg + len) / 2.0
    }

    /// The `≈` predicate: whether two strings are similar under the
    /// operator's threshold.
    pub fn similar(&self, a: &str, b: &str) -> bool {
        self.score(a, b) >= self.threshold
    }
}

/// Convenience free function using the default operator.
pub fn combined_similarity(a: &str, b: &str) -> f64 {
    SimilarityOperator::default().score(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_score_one() {
        assert_eq!(combined_similarity("Superbad", "Superbad"), 1.0);
    }

    #[test]
    fn substring_with_extra_tokens_scores_between_swg_and_one() {
        let s = combined_similarity("Superbad", "Superbad (2007)");
        assert!(s > 0.7 && s < 1.0, "score {s}");
    }

    #[test]
    fn threshold_controls_the_similar_predicate() {
        let lenient = SimilarityOperator::with_threshold(0.5);
        let strict = SimilarityOperator::with_threshold(0.95);
        assert!(lenient.similar("Superbad", "Superbad 2007"));
        assert!(!strict.similar("Superbad", "Superbad 2007 director cut edition"));
    }

    #[test]
    fn unrelated_strings_are_not_similar() {
        let op = SimilarityOperator::default();
        assert!(!op.similar("Zoolander", "The Orphanage"));
    }

    #[test]
    fn score_is_symmetric() {
        let op = SimilarityOperator::default();
        assert!((op.score("abcd", "abce") - op.score("abce", "abcd")).abs() < 1e-12);
    }
}
