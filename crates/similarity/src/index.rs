//! Precomputed top-`km` similarity match index.
//!
//! Section 5: *"To improve efficiency, we precompute the pairs of similar
//! values."* and Section 6: the number of top similar matches kept per value
//! is the `km` parameter that Table 4 sweeps over (2, 5, 10).
//!
//! Building the index naively is `O(|L| · |R|)` alignment calls; we use
//! token/trigram blocking: values are only aligned when they share at least
//! one blocking key, which is how record-linkage systems keep this step
//! tractable on large inputs. On top of blocking, construction applies a
//! stack of lossless prunes and fans out across threads:
//!
//! * **Skew-aware hot-key postings** — Zipf-shaped vocabularies concentrate
//!   mass on a few stopword-ish blocking keys whose posting lists approach
//!   the whole right column, degenerating blocking toward all-pairs. A key
//!   whose posting list covers more than `max(8, hot_key_fraction · |R|)`
//!   right values is *hot*: its postings are sorted by normalized length,
//!   and a probe enumerates only the length window that can survive the
//!   length bound (`min/max ≥ 2·threshold − 1`, widened by one length unit
//!   for floating-point safety) — candidates outside the window provably
//!   fail the filter below, so skipping them wholesale changes nothing.
//! * **Length/size filter** — each value is normalized once into a
//!   [`SimProfile`] (char vector + character histogram + bit-parallel match
//!   masks); [`SimilarityOperator::max_score_bound_with_common`] then bounds
//!   the combined score from the two normalized lengths and the character
//!   multiset intersection alone (the SWG alignment cannot match more
//!   characters than the two strings share), and a candidate whose bound
//!   is below the operator threshold is skipped without an alignment call.
//! * **Top-k early exit** — candidates are scored in descending bound order,
//!   so once `top_k` matches are held and the next candidate's bound is
//!   strictly below the running k-th score, no remaining candidate can
//!   displace anything and the rest of the list is abandoned.
//! * **Bit-parallel gate + banded kernel** — candidates that survive the
//!   bounds are scored through
//!   [`SimilarityOperator::score_profiles_at_least`]: a Myers-style
//!   bit-parallel pass bounds the achievable matches (order-aware, so much
//!   tighter than the histogram on anagram-ish pairs), then the exact SWG
//!   dynamic program runs *banded*, skipping cells too far off-diagonal to
//!   reach the requirement. Both steps are lossless: completed scores are
//!   bit-identical to the scalar reference DP (`crate::sw_gotoh`), abandons
//!   only hide pairs strictly below the running requirement.
//! * **Parallel construction** — left values are split into contiguous
//!   chunks mapped on `std::thread::scope` workers and merged in chunk
//!   order, so the built index is bit-identical at any thread count.
//!
//! All of these are exercised against a brute-force all-pairs oracle (no
//! blocking, no filter, no early exit, scalar scoring) in
//! `crates/similarity/tests/index_oracle.rs`, including Zipf-skewed
//! vocabularies that force the hot-key path.
//!
//! The index is keyed by interned [`Sym`] handles: probes coming from
//! bottom-clause construction arrive as the `Sym` already stored in a
//! [`dlearn_relstore::Value`], so a lookup hashes a 4-byte id instead of
//! re-hashing the raw string on every probe.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use dlearn_relstore::Sym;

use crate::combined::SimilarityOperator;
use crate::length::common_char_count;
use crate::sw_kernel::{aligned_match_upper_bound, SimProfile};
use crate::tokenize::{blocking_keys_into, normalize};

/// Cap on the auto-detected worker-thread count (`threads = 0`) — shared by
/// index construction here and the learner-side thread resolution
/// (`dlearn_core::LearnerConfig`). Alignment work stops scaling well past
/// this on the workloads we measure (the per-left candidate lists are short
/// once the bounds fire, so spawn/merge overhead dominates), and an
/// unbounded auto-fanout on a many-core CI machine oversubscribes the
/// memory bus for no win. An *explicit* `threads = n` is always honored.
pub const MAX_AUTO_THREADS: usize = 16;

/// Process-wide count of alignment-based index constructions (calls to
/// [`SimilarityIndex::build`]). The derived constructors
/// ([`SimilarityIndex::filter_min_score`],
/// [`SimilarityIndex::exact_normalized`]) do not count: they run no
/// alignment. Used by tests asserting that a prepared `Engine` builds its
/// similarity index exactly once no matter how many strategies run over it.
static BUILD_COUNT: AtomicUsize = AtomicUsize::new(0);

/// A single similarity match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// The matched value from the *other* column (interned).
    pub value: Sym,
    /// Combined similarity score in `[0, 1]`.
    pub score: f64,
}

/// Configuration of a [`SimilarityIndex`].
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Keep at most this many matches per value (the paper's `km`).
    pub top_k: usize,
    /// The similarity operator (score + threshold).
    pub operator: SimilarityOperator,
    /// Worker threads for index construction (0 = available cores, capped
    /// at [`MAX_AUTO_THREADS`]). The built index is bit-identical at any
    /// thread count: left values are processed in contiguous chunks whose
    /// per-value results do not depend on the chunking, and chunk results
    /// merge in left order.
    pub threads: usize,
    /// A blocking key is *hot* when its posting list covers more than
    /// `max(8, hot_key_fraction · |right|)` right values — the token-IDF
    /// knob of skew-aware candidate generation. Hot postings are sorted by
    /// normalized length so probes touch only the length-compatible window;
    /// the pruning is lossless at any setting (skipped candidates provably
    /// fail the length bound), so the knob trades build-time sort cost
    /// against probe-time window savings, never result quality. `0.0` makes
    /// every list beyond the floor of 8 hot; `1.0` disables the path.
    pub hot_key_fraction: f64,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            top_k: 5,
            operator: SimilarityOperator::default(),
            threads: 0,
            hot_key_fraction: 0.05,
        }
    }
}

impl IndexConfig {
    /// Config with a given `km` and default operator.
    pub fn top_k(top_k: usize) -> Self {
        IndexConfig {
            top_k,
            ..IndexConfig::default()
        }
    }

    /// Set the construction thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the hot-key fraction (builder style).
    pub fn with_hot_key_fraction(mut self, hot_key_fraction: f64) -> Self {
        self.hot_key_fraction = hot_key_fraction;
        self
    }

    /// Number of construction worker threads to actually use.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_AUTO_THREADS)
        }
    }

    /// Posting-list length above which a blocking key counts as hot.
    fn hot_posting_cap(&self, right_count: usize) -> usize {
        const HOT_KEY_FLOOR: usize = 8;
        let frac = (self.hot_key_fraction * right_count as f64).ceil();
        if frac.is_finite() && frac >= 0.0 {
            (frac as usize).max(HOT_KEY_FLOOR)
        } else {
            HOT_KEY_FLOOR
        }
    }
}

/// A probe key for `Sym`-keyed indexes: either a `Sym` (hot path — already
/// interned, nothing to do) or a raw string, resolved through the interner
/// **without inserting** — a string nobody interned cannot be an index key,
/// so unknown probes return "no matches" instead of leaking into the
/// process-global intern table.
pub trait QuerySym {
    /// Resolve to an interned symbol, if one exists.
    fn query_sym(self) -> Option<Sym>;
}

impl QuerySym for Sym {
    fn query_sym(self) -> Option<Sym> {
        Some(self)
    }
}

impl QuerySym for &str {
    fn query_sym(self) -> Option<Sym> {
        Sym::lookup(self)
    }
}

impl QuerySym for &String {
    fn query_sym(self) -> Option<Sym> {
        Sym::lookup(self)
    }
}

/// A bidirectional top-`km` similarity match index between two columns of
/// string values (the two sides of a matching dependency).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimilarityIndex {
    pub(crate) left_to_right: HashMap<Sym, Vec<Match>>,
    pub(crate) right_to_left: HashMap<Sym, Vec<Match>>,
}

impl SimilarityIndex {
    /// Build the index between the distinct values of the left and right
    /// columns.
    ///
    /// Candidate generation is blocking-based (values sharing no token or
    /// trigram are never compared); within a candidate list the length
    /// filter and top-k early exit skip alignment calls that provably
    /// cannot contribute a stored match, and left values fan out across
    /// `config.threads` scoped workers. None of the three changes the
    /// result: the built index equals the one-thread, filter-free build
    /// pair for pair.
    pub fn build(left: &[Sym], right: &[Sym], config: &IndexConfig) -> Self {
        BUILD_COUNT.fetch_add(1, Ordering::Relaxed);
        let left = dedup(left);
        let right = dedup(right);

        let (right_profiles, block) = build_postings(&right, config);

        // Per-left-value match lists are independent of each other, so left
        // values fan out across scoped workers in contiguous chunks. Each
        // worker owns its scratch buffers; results concatenate in chunk
        // order, which is exactly the serial left order. Worker count is
        // capped so every chunk carries at least `MIN_CHUNK_LEFT` left
        // values: spawn/join costs real time, and the learner rebuilds many
        // tiny per-MD indexes where a serial pass is cheaper than a single
        // spawn (the thread-count determinism contract is unaffected — the
        // cap depends only on the input, never on what the workers do).
        const MIN_CHUNK_LEFT: usize = 8;
        let threads = config
            .effective_threads()
            .min(left.len() / MIN_CHUNK_LEFT)
            .max(1);
        let per_left: Vec<Vec<Match>> = if threads <= 1 {
            let mut scratch = Scratch::new(right.len());
            left.iter()
                .map(|&l| score_one_left(l, &right, &right_profiles, &block, config, &mut scratch))
                .collect()
        } else {
            let chunk = left.len().div_ceil(threads);
            let mut out: Vec<Vec<Vec<Match>>> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk_items in left.chunks(chunk) {
                    let (right, right_profiles, block) = (&right, &right_profiles, &block);
                    handles.push(scope.spawn(move || {
                        let mut scratch = Scratch::new(right.len());
                        chunk_items
                            .iter()
                            .map(|&l| {
                                score_one_left(
                                    l,
                                    right,
                                    right_profiles,
                                    block,
                                    config,
                                    &mut scratch,
                                )
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    out.push(h.join().expect("index-build worker panicked"));
                }
            });
            out.into_iter().flatten().collect()
        };

        // Deterministic merge: left order drives both map fills, so the
        // index contents never depend on the thread count.
        let mut left_to_right: HashMap<Sym, Vec<Match>> = HashMap::new();
        let mut right_to_left: HashMap<Sym, Vec<Match>> = HashMap::new();
        for (&l, matches) in left.iter().zip(per_left) {
            for m in &matches {
                let back = right_to_left.entry(m.value).or_default();
                back.push(Match {
                    value: l,
                    score: m.score,
                });
            }
            if !matches.is_empty() {
                left_to_right.insert(l, matches);
            }
        }

        // The reverse direction also keeps only the top-k matches per value.
        for matches in right_to_left.values_mut() {
            sort_matches(matches);
            matches.truncate(config.top_k);
        }

        SimilarityIndex {
            left_to_right,
            right_to_left,
        }
    }

    /// Matches of a left-column value (empty slice when none).
    pub fn matches_left(&self, value: impl QuerySym) -> &[Match] {
        value
            .query_sym()
            .and_then(|s| self.left_to_right.get(&s))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Matches of a right-column value (empty slice when none).
    pub fn matches_right(&self, value: impl QuerySym) -> &[Match] {
        value
            .query_sym()
            .and_then(|s| self.right_to_left.get(&s))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The single best match of a left-column value, if any. Used by the
    /// Castor-Clean baseline, which unifies each value with its most similar
    /// counterpart before learning.
    pub fn best_match_left(&self, value: impl QuerySym) -> Option<&Match> {
        self.matches_left(value).first()
    }

    /// Whether a specific pair of values was matched (in either direction).
    pub fn are_matched(&self, left: impl QuerySym, right: impl QuerySym) -> bool {
        let (Some(left), Some(right)) = (left.query_sym(), right.query_sym()) else {
            return false;
        };
        self.matches_left(left).iter().any(|m| m.value == right)
            || self.matches_right(left).iter().any(|m| m.value == right)
    }

    /// Number of left-column values that have at least one match.
    pub fn matched_left_count(&self) -> usize {
        self.left_to_right.len()
    }

    /// Total number of stored (left, right) match pairs.
    pub fn pair_count(&self) -> usize {
        self.left_to_right.values().map(|v| v.len()).sum()
    }

    /// All left-side entries as `(value, matches)` pairs, in unspecified
    /// order. Used by differential tests comparing the built index against
    /// a reference construction.
    pub fn iter_left(&self) -> impl Iterator<Item = (Sym, &[Match])> {
        self.left_to_right.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// All right-side entries as `(value, matches)` pairs, in unspecified
    /// order.
    pub fn iter_right(&self) -> impl Iterator<Item = (Sym, &[Match])> {
        self.right_to_left.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Number of alignment-based [`SimilarityIndex::build`] calls performed
    /// by this process so far. Derived constructions (score filters, exact
    /// indexes) are not counted. Intended for tests asserting that prepared
    /// sessions never rebuild their indexes.
    pub fn build_count() -> usize {
        BUILD_COUNT.load(Ordering::Relaxed)
    }

    /// Derive a stricter index by dropping every stored pair whose score is
    /// below `min_score`, without re-running any alignment.
    ///
    /// Stored match lists are sorted by `(score desc, value asc)` and
    /// truncated to `top_k`, so the pairs with `score >= min_score` are a
    /// prefix of each list and the result equals a fresh
    /// [`SimilarityIndex::build`] with the operator threshold raised to
    /// `min_score` — as long as `min_score` is at least the original
    /// threshold (a *lower* threshold cannot resurrect pairs the original
    /// build never stored).
    pub fn filter_min_score(&self, min_score: f64) -> Self {
        let keep = |matches: &Vec<Match>| {
            let kept: Vec<Match> = matches
                .iter()
                .take_while(|m| m.score >= min_score)
                .copied()
                .collect();
            if kept.is_empty() {
                None
            } else {
                Some(kept)
            }
        };
        SimilarityIndex {
            left_to_right: self
                .left_to_right
                .iter()
                .filter_map(|(&k, v)| keep(v).map(|kept| (k, kept)))
                .collect(),
            right_to_left: self
                .right_to_left
                .iter()
                .filter_map(|(&k, v)| keep(v).map(|kept| (k, kept)))
                .collect(),
        }
    }

    /// Build an *exact-join* index without any alignment: two values match
    /// (with score 1.0) iff their normalized forms are equal. This is the
    /// index shape the Castor-Exact/Castor-Clean baselines need after value
    /// unification, where cross-source joins only connect identical strings.
    pub fn exact_normalized(left: &[Sym], right: &[Sym], top_k: usize) -> Self {
        let left = dedup(left);
        let right = dedup(right);
        if top_k == 0 {
            return SimilarityIndex::default();
        }
        let mut by_normalized: HashMap<String, Vec<Sym>> = HashMap::new();
        for &r in &right {
            let n = normalize(r.as_str());
            if !n.is_empty() {
                by_normalized.entry(n).or_default().push(r);
            }
        }
        let mut left_to_right: HashMap<Sym, Vec<Match>> = HashMap::new();
        let mut right_to_left: HashMap<Sym, Vec<Match>> = HashMap::new();
        for &l in &left {
            let n = normalize(l.as_str());
            let Some(rights) = (!n.is_empty()).then(|| by_normalized.get(&n)).flatten() else {
                continue;
            };
            // `dedup` sorted both sides, so the per-value lists are already
            // in the (score desc, value asc) order `build` stores.
            let matches: Vec<Match> = rights
                .iter()
                .take(top_k)
                .map(|&r| Match {
                    value: r,
                    score: 1.0,
                })
                .collect();
            for m in &matches {
                right_to_left.entry(m.value).or_default().push(Match {
                    value: l,
                    score: 1.0,
                });
            }
            left_to_right.insert(l, matches);
        }
        for matches in right_to_left.values_mut() {
            matches.truncate(top_k);
        }
        SimilarityIndex {
            left_to_right,
            right_to_left,
        }
    }
}

/// A blocking key's posting list over right indexes.
///
/// Most keys are **cold**: a short list walked in full. Keys whose list
/// exceeds the hot cap (see [`IndexConfig::hot_key_fraction`]) store their
/// postings sorted by `(normalized length, right index)`, so a probe with
/// left length `ll` enumerates only the contiguous window of right lengths
/// that can pass the length bound — the completeness fallback that keeps
/// hot stopword-ish keys from degenerating into all-pairs scans while still
/// generating every candidate the filter could keep.
#[derive(Debug, Clone)]
pub(crate) enum Posting {
    /// Plain right indexes, in right order.
    Cold(Vec<u32>),
    /// `(normalized length, right index)`, sorted ascending.
    Hot(Vec<(u32, u32)>),
}

/// Build the right-side profiles and the inverted blocking index, keyed by
/// *interned* blocking keys. `blocking_keys` still allocates its `String`s
/// (the tokenizer's output type); what interning buys is the map itself:
/// entries store an 8-byte `Sym` instead of a 24-byte owned `String`, map
/// probes hash a pointer instead of re-hashing string bytes, and identical
/// vocabularies across rebuilds (cross-validation folds, the eval harness
/// re-indexing the same columns) share one stored copy of each key.
/// Trade-off: interned keys live for the process lifetime, so the global
/// table grows with each *new* vocabulary indexed — bounded by the
/// token/trigram vocabulary of the input databases, the same
/// process-lifetime argument the interner itself makes; the probe side pays
/// one interner shard lookup per key.
///
/// Skew-aware conversion: posting lists past the hot cap are sorted by
/// (normalized length, right index) so probes can binary-search the length
/// window instead of walking the whole list. Shared by [`SimilarityIndex::
/// build`] and the incremental maintenance layer (`crate::delta`), which
/// must generate candidates from byte-identical postings.
pub(crate) fn build_postings(
    right: &[Sym],
    config: &IndexConfig,
) -> (Vec<SimProfile>, HashMap<Sym, Posting>) {
    let mut raw_block: HashMap<Sym, Vec<u32>> = HashMap::new();
    let mut right_profiles: Vec<SimProfile> = Vec::with_capacity(right.len());
    let mut key_buf: Vec<String> = Vec::new();
    for (j, r) in right.iter().enumerate() {
        blocking_keys_into(r.as_str(), &mut key_buf);
        for key in key_buf.drain(..) {
            raw_block
                .entry(Sym::intern(key))
                .or_default()
                .push(j as u32);
        }
        right_profiles.push(SimProfile::new(r.as_str()));
    }
    let hot_cap = config.hot_posting_cap(right.len());
    let block: HashMap<Sym, Posting> = raw_block
        .into_iter()
        .map(|(key, ids)| {
            let posting = if ids.len() > hot_cap {
                let mut by_len: Vec<(u32, u32)> = ids
                    .into_iter()
                    .map(|j| (right_profiles[j as usize].len() as u32, j))
                    .collect();
                by_len.sort_unstable();
                Posting::Hot(by_len)
            } else {
                Posting::Cold(ids)
            };
            (key, posting)
        })
        .collect();
    (right_profiles, block)
}

/// The inclusive right-length window `[lo, hi]` compatible with the length
/// bound for a probe of normalized length `ll` under `threshold`: the
/// filter keeps a pair only if `(1 + min/max) / 2 ≥ threshold`, i.e.
/// `min/max ≥ r = 2·threshold − 1`, so a right length outside
/// `[ll·r, ll/r]` provably fails it. The window is widened by one length
/// unit on each side so the floating-point ceil/floor can never exclude a
/// boundary length the exact filter would keep; when `r ≤ 0` every length
/// is compatible.
fn length_window(ll: usize, threshold: f64) -> (u32, u32) {
    let r = 2.0 * threshold - 1.0;
    if r <= 0.0 || ll == 0 {
        return (0, u32::MAX);
    }
    let lo = ((ll as f64 * r).ceil() as i64 - 1).max(0) as u32;
    // `as` saturates on overflow, so a tiny `r` yields an open-ended window.
    let hi = ((ll as f64 / r).floor() + 1.0) as u32;
    (lo, hi)
}

/// Per-worker scratch buffers reused across the left values of one chunk.
pub(crate) struct Scratch {
    /// Candidate right indexes of the current left value, deduplicated.
    candidates: Vec<(usize, f64)>,
    /// Dedup bitmap over right indexes (cleared after each left value).
    seen: Vec<bool>,
    /// Blocking-key buffer (strings reused across left values).
    keys: Vec<String>,
}

impl Scratch {
    pub(crate) fn new(right_count: usize) -> Self {
        Scratch {
            candidates: Vec::new(),
            seen: vec![false; right_count],
            keys: Vec::new(),
        }
    }
}

/// Compute one left value's stored match list: its blocking candidates,
/// length-filtered, scored in descending bound order with top-k early exit.
///
/// The result is provably identical to "score every candidate, sort by
/// (score desc, value asc), truncate to `top_k`":
///
/// * a candidate skipped by the **filter** has `score <= bound < threshold`,
///   so the exhaustive loop would drop it too;
/// * the **early exit** only fires when `top_k` matches are held and the
///   next candidate's bound is *strictly* below the current k-th score;
///   since candidates arrive in descending bound order and the k-th score
///   only rises, every abandoned candidate has
///   `score <= bound < final k-th score` and could not have displaced a
///   kept match even on a score tie (ties break by value order, which
///   requires score equality).
pub(crate) fn score_one_left(
    l: Sym,
    right: &[Sym],
    right_profiles: &[SimProfile],
    block: &HashMap<Sym, Posting>,
    config: &IndexConfig,
    scratch: &mut Scratch,
) -> Vec<Match> {
    let Scratch {
        candidates,
        seen,
        keys,
    } = scratch;
    candidates.clear();
    if config.top_k == 0 {
        return Vec::new();
    }
    let left_profile = SimProfile::new(l.as_str());
    // Hot posting lists are length-sorted: only the window compatible with
    // the length bound can survive the filter below, so the probe walks
    // just that slice. Candidate *order* does not matter here — the list is
    // re-sorted by (bound desc, index) before scoring — only the set does,
    // and the window keeps every index the filter could keep.
    let (len_lo, len_hi) = length_window(left_profile.len(), config.operator.threshold);
    // Probe keys resolve through `Sym::lookup`, which never inserts: a
    // left-only key was interned by no right value, so it cannot be in the
    // block map — skipping it neither loses candidates nor leaks probe-side
    // strings into the intern table.
    blocking_keys_into(l.as_str(), keys);
    for key in keys.iter() {
        let Some(posting) = Sym::lookup(key).and_then(|k| block.get(&k)) else {
            continue;
        };
        match posting {
            Posting::Cold(ids) => {
                for &j in ids {
                    let j = j as usize;
                    if !seen[j] {
                        seen[j] = true;
                        candidates.push((j, 0.0));
                    }
                }
            }
            Posting::Hot(by_len) => {
                let start = by_len.partition_point(|&(len, _)| len < len_lo);
                for &(len, j) in &by_len[start..] {
                    if len > len_hi {
                        break;
                    }
                    let j = j as usize;
                    if !seen[j] {
                        seen[j] = true;
                        candidates.push((j, 0.0));
                    }
                }
            }
        }
    }
    // The length/size filter: drop candidates that provably cannot reach
    // the threshold, before any alignment call. Candidates surviving the
    // cheap histogram bound are tightened with the bit-parallel LCS bound
    // (order-aware, so much sharper on anagram-ish pairs): the stored bound
    // is the minimum of the two, which both prunes more here and lets the
    // top-k early exit below fire sooner. Each is an upper bound on the
    // true score, so the minimum is too — the filter stays lossless.
    for &(j, _) in candidates.iter() {
        seen[j] = false;
    }
    candidates.retain_mut(|(j, bound)| {
        let rp = &right_profiles[*j];
        *bound = config.operator.max_score_bound_with_common(
            left_profile.len(),
            rp.len(),
            common_char_count(&left_profile.hist, &rp.hist),
        );
        if *bound < config.operator.threshold {
            return false;
        }
        if let Some(matches) = aligned_match_upper_bound(&left_profile, rp) {
            *bound = bound.min(config.operator.score_bound_from_matches(
                left_profile.len(),
                rp.len(),
                matches,
            ));
        }
        *bound >= config.operator.threshold
    });
    // Descending bound, ties by right position: deterministic, and it front-
    // loads the candidates that can still displace a running top-k entry.
    candidates.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });

    // `matches` is kept sorted by (score desc, value asc) and capped at
    // `top_k` — the same total order `sort_matches` applies, so the bounded
    // insertion keeps exactly the sort-then-truncate prefix.
    let mut matches: Vec<Match> = Vec::with_capacity(config.top_k.min(candidates.len()));
    for &(j, bound) in candidates.iter() {
        // A candidate only matters if it reaches the threshold and, once
        // the list is full, the k-th score (a tie can still displace on
        // the value order, so `required` is "reach", not "beat").
        let required = if matches.len() == config.top_k {
            let kth = matches[config.top_k - 1].score;
            if bound < kth {
                break; // top-k early exit: nothing further can displace.
            }
            kth.max(config.operator.threshold)
        } else {
            config.operator.threshold
        };
        let r = right[j];
        let Some(score) =
            config
                .operator
                .score_profiles_at_least(&left_profile, &right_profiles[j], required)
        else {
            continue; // provably below `required`: cannot be stored.
        };
        if score < config.operator.threshold {
            continue;
        }
        let m = Match { value: r, score };
        let pos = matches.partition_point(|held| {
            held.score > m.score || (held.score == m.score && held.value < m.value)
        });
        if pos < config.top_k {
            if matches.len() == config.top_k {
                matches.pop();
            }
            matches.insert(pos, m);
        }
    }
    matches
}

/// Descending score, ties broken by the value's string order — the same
/// deterministic order the pre-interning index used.
pub(crate) fn sort_matches(matches: &mut [Match]) {
    matches.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.value.cmp(&b.value))
    });
}

pub(crate) fn dedup(values: &[Sym]) -> Vec<Sym> {
    let mut v: Vec<Sym> = values.to_vec();
    v.sort(); // Sym's Ord is lexicographic
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(values: &[&str]) -> Vec<Sym> {
        values.iter().map(Sym::intern).collect()
    }

    fn movies_left() -> Vec<Sym> {
        syms(&["Star Wars", "Superbad", "Zoolander", "Totally Unrelated"])
    }

    fn movies_right() -> Vec<Sym> {
        syms(&[
            "Star Wars: Episode IV - 1977",
            "Star Wars: Episode III - 2005",
            "Superbad (2007)",
            "Zoolander (2001)",
            "The Orphanage",
        ])
    }

    #[test]
    fn index_finds_expected_matches() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.6),
                ..IndexConfig::default()
            },
        );
        let superbad = idx.matches_left("Superbad");
        assert!(superbad.iter().any(|m| m.value == "Superbad (2007)"));
        let star_wars = idx.matches_left("Star Wars");
        assert_eq!(
            star_wars.len(),
            2,
            "Star Wars should match both episodes: {star_wars:?}"
        );
        assert!(idx.matches_left("Totally Unrelated").is_empty());
    }

    #[test]
    fn top_k_limits_matches() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig {
                top_k: 1,
                operator: SimilarityOperator::with_threshold(0.6),
                ..IndexConfig::default()
            },
        );
        assert!(idx.matches_left("Star Wars").len() <= 1);
    }

    #[test]
    fn reverse_direction_is_populated() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.6),
                ..IndexConfig::default()
            },
        );
        let back = idx.matches_right("Superbad (2007)");
        assert!(back.iter().any(|m| m.value == "Superbad"));
        assert!(idx.are_matched("Superbad", "Superbad (2007)"));
    }

    #[test]
    fn sym_probes_equal_str_probes() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.6),
                ..IndexConfig::default()
            },
        );
        assert_eq!(
            idx.matches_left(Sym::intern("Superbad")).len(),
            idx.matches_left("Superbad").len()
        );
    }

    #[test]
    fn matches_are_sorted_by_descending_score() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.5),
                ..IndexConfig::default()
            },
        );
        for v in movies_left() {
            let ms = idx.matches_left(v);
            for w in ms.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    }

    #[test]
    fn best_match_left_returns_highest_scoring() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.5),
                ..IndexConfig::default()
            },
        );
        let best = idx.best_match_left("Zoolander").unwrap();
        assert_eq!(best.value, "Zoolander (2001)");
    }

    #[test]
    fn empty_inputs_produce_empty_index() {
        let idx = SimilarityIndex::build(&[], &movies_right(), &IndexConfig::default());
        assert_eq!(idx.matched_left_count(), 0);
        assert_eq!(idx.pair_count(), 0);
    }

    #[test]
    fn values_without_blocking_keys_are_never_matched() {
        // The empty string and pure punctuation normalize to nothing, so
        // they produce zero blocking keys on either side: they must land in
        // no block (not even a shared "empty" block) and never reach the
        // aligner — on both the build side and the probe side.
        let left = syms(&["", "?!|", "Star Wars"]);
        let right = syms(&["", "---", "Star Wars: Episode IV - 1977"]);
        let idx = SimilarityIndex::build(
            &left,
            &right,
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.0),
                ..IndexConfig::default()
            },
        );
        assert!(idx.matches_left("").is_empty());
        assert!(idx.matches_left("?!|").is_empty());
        assert!(idx.matches_right("").is_empty());
        assert!(idx.matches_right("---").is_empty());
        // The keyed value still matches normally next to the keyless ones.
        assert!(!idx.matches_left("Star Wars").is_empty());
        assert_eq!(idx.matched_left_count(), 1);
    }

    #[test]
    fn single_value_blocks_match_their_only_candidate() {
        // Each blocking key maps to exactly one right value; the alignment
        // loop must handle one-element candidate lists (no pair is skipped
        // and no out-of-bounds dedup happens).
        let left = syms(&["Superbad"]);
        let right = syms(&["Superbad (2007)"]);
        let idx = SimilarityIndex::build(
            &left,
            &right,
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.6),
                ..IndexConfig::default()
            },
        );
        let ms = idx.matches_left("Superbad");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value, "Superbad (2007)");
        assert_eq!(idx.pair_count(), 1);
        assert!(idx.are_matched("Superbad", "Superbad (2007)"));
    }

    #[test]
    fn left_only_blocking_keys_stay_out_of_the_intern_table() {
        // A blocking key produced only by a *left* value must resolve
        // through the non-inserting `Sym::lookup` during the probe: it can
        // match nothing (no right value interned it into the block map) and
        // it must not leak into the process-global intern table.
        let marker = "xqleftonlytokenzq";
        assert!(
            Sym::lookup(marker).is_none(),
            "marker token unexpectedly interned by an earlier test"
        );
        let left = syms(&[
            // normalizes to tokens ["xqleftonlytokenzq", "movie"]
            "xqLeftOnlyTokenZq movie",
        ]);
        let right = syms(&["totally different film"]);
        let idx = SimilarityIndex::build(&left, &right, &IndexConfig::default());
        assert!(idx.matches_left("xqLeftOnlyTokenZq movie").is_empty());
        assert!(
            Sym::lookup(marker).is_none(),
            "probe-side blocking key leaked into the intern table"
        );
    }

    #[test]
    fn filter_min_score_equals_a_fresh_build_at_the_higher_threshold() {
        // Stored lists are (score desc, value asc), so filtering at a
        // raised threshold must equal rebuilding with that threshold —
        // entry for entry, score bits included.
        for top_k in [1usize, 2, 5] {
            let base = SimilarityIndex::build(
                &movies_left(),
                &movies_right(),
                &IndexConfig {
                    top_k,
                    operator: SimilarityOperator::with_threshold(0.5),
                    ..IndexConfig::default()
                },
            );
            for threshold in [0.6, 0.75, 0.9, 0.9999] {
                let fresh = SimilarityIndex::build(
                    &movies_left(),
                    &movies_right(),
                    &IndexConfig {
                        top_k,
                        operator: SimilarityOperator::with_threshold(threshold),
                        ..IndexConfig::default()
                    },
                );
                assert_eq!(
                    base.filter_min_score(threshold),
                    fresh,
                    "top_k={top_k}, threshold={threshold}"
                );
            }
        }
    }

    #[test]
    fn exact_normalized_matches_equal_normalized_strings_only() {
        let left = syms(&["Superbad", "Star Wars", "star  wars", "Unique Left"]);
        let right = syms(&["Star Wars", "Superbad (2007)", "Something Else"]);
        let idx = SimilarityIndex::exact_normalized(&left, &right, 5);
        // Case/whitespace-insensitive equality matches...
        assert_eq!(idx.matches_left("Star Wars").len(), 1);
        assert_eq!(idx.matches_left("star  wars").len(), 1);
        assert!(idx.are_matched("star  wars", "Star Wars"));
        // ...but near-matches do not.
        assert!(idx.matches_left("Superbad").is_empty());
        assert!(idx.matches_left("Unique Left").is_empty());
        // Scores are exactly 1.0 and the reverse direction is populated.
        assert!(idx
            .matches_right("Star Wars")
            .iter()
            .all(|m| m.score == 1.0));
        assert_eq!(idx.matches_right("Star Wars").len(), 2);
        // top_k caps both directions.
        let capped = SimilarityIndex::exact_normalized(&left, &right, 1);
        assert_eq!(capped.matches_right("Star Wars").len(), 1);
    }

    #[test]
    fn build_count_increments_on_alignment_builds() {
        // Unit tests share the process, so only monotonicity is asserted
        // here; the "derived constructors don't count" half is pinned by the
        // isolated `tests/index_build_count.rs` integration binary.
        let before = SimilarityIndex::build_count();
        let _ = SimilarityIndex::build(&movies_left(), &movies_right(), &IndexConfig::default());
        assert!(SimilarityIndex::build_count() > before);
    }

    #[test]
    fn hot_key_fraction_never_changes_the_built_index() {
        // A vocabulary dominated by one stopword-ish token: with fraction
        // 0.0 the shared-token posting list goes hot (length-windowed
        // probes), with 1.0 the hot path is disabled entirely. The built
        // index must be identical — the window only skips candidates the
        // length filter would drop anyway.
        let left: Vec<Sym> = (0..40)
            .map(|i| Sym::intern(format!("the item number {i}")))
            .collect();
        let right: Vec<Sym> = (0..40)
            .map(|i| {
                if i % 3 == 0 {
                    Sym::intern(format!("the item number {i} special anniversary edition"))
                } else {
                    Sym::intern(format!("the item number {i}"))
                }
            })
            .collect();
        let base = IndexConfig {
            top_k: 3,
            operator: SimilarityOperator::with_threshold(0.65),
            ..IndexConfig::default()
        };
        let all_hot =
            SimilarityIndex::build(&left, &right, &base.clone().with_hot_key_fraction(0.0));
        let none_hot =
            SimilarityIndex::build(&left, &right, &base.clone().with_hot_key_fraction(1.0));
        assert!(
            all_hot.pair_count() > 0,
            "test vocabulary produced no matches"
        );
        assert_eq!(all_hot, none_hot);
    }

    #[test]
    fn length_window_keeps_every_length_the_filter_keeps() {
        // Exhaustive small-domain check: any (ll, rl) whose plain length
        // bound reaches the threshold must fall inside the window.
        let op = SimilarityOperator::default();
        for threshold in [0.0, 0.5, 0.65, 0.75, 0.9, 1.0] {
            for ll in 0..60usize {
                let (lo, hi) = length_window(ll, threshold);
                for rl in 0..60usize {
                    if op.max_score_bound(ll, rl) >= threshold {
                        assert!(
                            (lo..=hi).contains(&(rl as u32)),
                            "({ll}, {rl}) passes the bound at t={threshold} \
                             but fell outside [{lo}, {hi}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn probes_absent_from_the_intern_table_return_empty_without_interning() {
        let idx = SimilarityIndex::build(&movies_left(), &movies_right(), &IndexConfig::default());
        let probe = "xqneverinternedprobezq";
        assert!(Sym::lookup(probe).is_none());
        assert!(idx.matches_left(probe).is_empty());
        assert!(idx.matches_right(probe).is_empty());
        assert!(idx.best_match_left(probe).is_none());
        assert!(!idx.are_matched(probe, "Superbad (2007)"));
        assert!(!idx.are_matched("Superbad", probe));
        // The probe path is `Sym::lookup`-only: nothing was interned.
        assert!(
            Sym::lookup(probe).is_none(),
            "a read-only probe interned its key"
        );
    }
}
