//! Precomputed top-`km` similarity match index.
//!
//! Section 5: *"To improve efficiency, we precompute the pairs of similar
//! values."* and Section 6: the number of top similar matches kept per value
//! is the `km` parameter that Table 4 sweeps over (2, 5, 10).
//!
//! Building the index naively is `O(|L| · |R|)` alignment calls; we use
//! token/trigram blocking: values are only aligned when they share at least
//! one blocking key, which is how record-linkage systems keep this step
//! tractable on large inputs.
//!
//! The index is keyed by interned [`Sym`] handles: probes coming from
//! bottom-clause construction arrive as the `Sym` already stored in a
//! [`dlearn_relstore::Value`], so a lookup hashes a 4-byte id instead of
//! re-hashing the raw string on every probe.

use std::collections::HashMap;

use dlearn_relstore::Sym;

use crate::combined::SimilarityOperator;
use crate::tokenize::blocking_keys;

/// A single similarity match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// The matched value from the *other* column (interned).
    pub value: Sym,
    /// Combined similarity score in `[0, 1]`.
    pub score: f64,
}

/// Configuration of a [`SimilarityIndex`].
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Keep at most this many matches per value (the paper's `km`).
    pub top_k: usize,
    /// The similarity operator (score + threshold).
    pub operator: SimilarityOperator,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            top_k: 5,
            operator: SimilarityOperator::default(),
        }
    }
}

impl IndexConfig {
    /// Config with a given `km` and default operator.
    pub fn top_k(top_k: usize) -> Self {
        IndexConfig {
            top_k,
            ..IndexConfig::default()
        }
    }
}

/// A probe key for `Sym`-keyed indexes: either a `Sym` (hot path — already
/// interned, nothing to do) or a raw string, resolved through the interner
/// **without inserting** — a string nobody interned cannot be an index key,
/// so unknown probes return "no matches" instead of leaking into the
/// process-global intern table.
pub trait QuerySym {
    /// Resolve to an interned symbol, if one exists.
    fn query_sym(self) -> Option<Sym>;
}

impl QuerySym for Sym {
    fn query_sym(self) -> Option<Sym> {
        Some(self)
    }
}

impl QuerySym for &str {
    fn query_sym(self) -> Option<Sym> {
        Sym::lookup(self)
    }
}

impl QuerySym for &String {
    fn query_sym(self) -> Option<Sym> {
        Sym::lookup(self)
    }
}

/// A bidirectional top-`km` similarity match index between two columns of
/// string values (the two sides of a matching dependency).
#[derive(Debug, Clone, Default)]
pub struct SimilarityIndex {
    left_to_right: HashMap<Sym, Vec<Match>>,
    right_to_left: HashMap<Sym, Vec<Match>>,
}

impl SimilarityIndex {
    /// Build the index between the distinct values of the left and right
    /// columns.
    pub fn build(left: &[Sym], right: &[Sym], config: &IndexConfig) -> Self {
        let left = dedup(left);
        let right = dedup(right);

        // Inverted blocking index over the right column, keyed by *interned*
        // blocking keys. `blocking_keys` still allocates its `String`s (the
        // tokenizer's output type); what interning buys is the map itself:
        // entries store an 8-byte `Sym` instead of a 24-byte owned `String`,
        // map probes hash a pointer instead of re-hashing string bytes, and
        // identical vocabularies across rebuilds (cross-validation folds,
        // the eval harness re-indexing the same columns) share one stored
        // copy of each key. Trade-off: interned keys live for the process
        // lifetime, so the global table grows with each *new* vocabulary
        // indexed — bounded by the token/trigram vocabulary of the input
        // databases, the same process-lifetime argument the interner itself
        // makes; the probe side pays one interner shard lookup per key.
        let mut block: HashMap<Sym, Vec<usize>> = HashMap::new();
        for (j, r) in right.iter().enumerate() {
            for key in blocking_keys(r.as_str()) {
                block.entry(Sym::intern(key)).or_default().push(j);
            }
        }

        let mut left_to_right: HashMap<Sym, Vec<Match>> = HashMap::new();
        let mut right_to_left: HashMap<Sym, Vec<Match>> = HashMap::new();

        let mut candidates: Vec<usize> = Vec::new();
        let mut seen = vec![false; right.len()];
        for &l in &left {
            candidates.clear();
            // Probe keys resolve through `Sym::lookup`, which never inserts:
            // a left-only key was interned by no right value, so it cannot
            // be in the block map — skipping it neither loses candidates nor
            // leaks probe-side strings into the intern table.
            for key in blocking_keys(l.as_str()) {
                if let Some(ids) = Sym::lookup(&key).and_then(|k| block.get(&k)) {
                    for &j in ids {
                        if !seen[j] {
                            seen[j] = true;
                            candidates.push(j);
                        }
                    }
                }
            }
            let mut matches: Vec<Match> = Vec::new();
            for &j in &candidates {
                seen[j] = false;
                let r = right[j];
                let score = config.operator.score(l.as_str(), r.as_str());
                if score >= config.operator.threshold {
                    matches.push(Match { value: r, score });
                }
            }
            sort_matches(&mut matches);
            matches.truncate(config.top_k);
            for m in &matches {
                let back = right_to_left.entry(m.value).or_default();
                back.push(Match {
                    value: l,
                    score: m.score,
                });
            }
            if !matches.is_empty() {
                left_to_right.insert(l, matches);
            }
        }

        // The reverse direction also keeps only the top-k matches per value.
        for matches in right_to_left.values_mut() {
            sort_matches(matches);
            matches.truncate(config.top_k);
        }

        SimilarityIndex {
            left_to_right,
            right_to_left,
        }
    }

    /// Matches of a left-column value (empty slice when none).
    pub fn matches_left(&self, value: impl QuerySym) -> &[Match] {
        value
            .query_sym()
            .and_then(|s| self.left_to_right.get(&s))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Matches of a right-column value (empty slice when none).
    pub fn matches_right(&self, value: impl QuerySym) -> &[Match] {
        value
            .query_sym()
            .and_then(|s| self.right_to_left.get(&s))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The single best match of a left-column value, if any. Used by the
    /// Castor-Clean baseline, which unifies each value with its most similar
    /// counterpart before learning.
    pub fn best_match_left(&self, value: impl QuerySym) -> Option<&Match> {
        self.matches_left(value).first()
    }

    /// Whether a specific pair of values was matched (in either direction).
    pub fn are_matched(&self, left: impl QuerySym, right: impl QuerySym) -> bool {
        let (Some(left), Some(right)) = (left.query_sym(), right.query_sym()) else {
            return false;
        };
        self.matches_left(left).iter().any(|m| m.value == right)
            || self.matches_right(left).iter().any(|m| m.value == right)
    }

    /// Number of left-column values that have at least one match.
    pub fn matched_left_count(&self) -> usize {
        self.left_to_right.len()
    }

    /// Total number of stored (left, right) match pairs.
    pub fn pair_count(&self) -> usize {
        self.left_to_right.values().map(|v| v.len()).sum()
    }
}

/// Descending score, ties broken by the value's string order — the same
/// deterministic order the pre-interning index used.
fn sort_matches(matches: &mut [Match]) {
    matches.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.value.cmp(&b.value))
    });
}

fn dedup(values: &[Sym]) -> Vec<Sym> {
    let mut v: Vec<Sym> = values.to_vec();
    v.sort(); // Sym's Ord is lexicographic
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(values: &[&str]) -> Vec<Sym> {
        values.iter().map(Sym::intern).collect()
    }

    fn movies_left() -> Vec<Sym> {
        syms(&["Star Wars", "Superbad", "Zoolander", "Totally Unrelated"])
    }

    fn movies_right() -> Vec<Sym> {
        syms(&[
            "Star Wars: Episode IV - 1977",
            "Star Wars: Episode III - 2005",
            "Superbad (2007)",
            "Zoolander (2001)",
            "The Orphanage",
        ])
    }

    #[test]
    fn index_finds_expected_matches() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.6),
            },
        );
        let superbad = idx.matches_left("Superbad");
        assert!(superbad.iter().any(|m| m.value == "Superbad (2007)"));
        let star_wars = idx.matches_left("Star Wars");
        assert_eq!(
            star_wars.len(),
            2,
            "Star Wars should match both episodes: {star_wars:?}"
        );
        assert!(idx.matches_left("Totally Unrelated").is_empty());
    }

    #[test]
    fn top_k_limits_matches() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig {
                top_k: 1,
                operator: SimilarityOperator::with_threshold(0.6),
            },
        );
        assert!(idx.matches_left("Star Wars").len() <= 1);
    }

    #[test]
    fn reverse_direction_is_populated() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.6),
            },
        );
        let back = idx.matches_right("Superbad (2007)");
        assert!(back.iter().any(|m| m.value == "Superbad"));
        assert!(idx.are_matched("Superbad", "Superbad (2007)"));
    }

    #[test]
    fn sym_probes_equal_str_probes() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.6),
            },
        );
        assert_eq!(
            idx.matches_left(Sym::intern("Superbad")).len(),
            idx.matches_left("Superbad").len()
        );
    }

    #[test]
    fn matches_are_sorted_by_descending_score() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.5),
            },
        );
        for v in movies_left() {
            let ms = idx.matches_left(v);
            for w in ms.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    }

    #[test]
    fn best_match_left_returns_highest_scoring() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.5),
            },
        );
        let best = idx.best_match_left("Zoolander").unwrap();
        assert_eq!(best.value, "Zoolander (2001)");
    }

    #[test]
    fn empty_inputs_produce_empty_index() {
        let idx = SimilarityIndex::build(&[], &movies_right(), &IndexConfig::default());
        assert_eq!(idx.matched_left_count(), 0);
        assert_eq!(idx.pair_count(), 0);
    }

    #[test]
    fn values_without_blocking_keys_are_never_matched() {
        // The empty string and pure punctuation normalize to nothing, so
        // they produce zero blocking keys on either side: they must land in
        // no block (not even a shared "empty" block) and never reach the
        // aligner — on both the build side and the probe side.
        let left = syms(&["", "?!|", "Star Wars"]);
        let right = syms(&["", "---", "Star Wars: Episode IV - 1977"]);
        let idx = SimilarityIndex::build(
            &left,
            &right,
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.0),
            },
        );
        assert!(idx.matches_left("").is_empty());
        assert!(idx.matches_left("?!|").is_empty());
        assert!(idx.matches_right("").is_empty());
        assert!(idx.matches_right("---").is_empty());
        // The keyed value still matches normally next to the keyless ones.
        assert!(!idx.matches_left("Star Wars").is_empty());
        assert_eq!(idx.matched_left_count(), 1);
    }

    #[test]
    fn single_value_blocks_match_their_only_candidate() {
        // Each blocking key maps to exactly one right value; the alignment
        // loop must handle one-element candidate lists (no pair is skipped
        // and no out-of-bounds dedup happens).
        let left = syms(&["Superbad"]);
        let right = syms(&["Superbad (2007)"]);
        let idx = SimilarityIndex::build(
            &left,
            &right,
            &IndexConfig {
                top_k: 5,
                operator: SimilarityOperator::with_threshold(0.6),
            },
        );
        let ms = idx.matches_left("Superbad");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value, "Superbad (2007)");
        assert_eq!(idx.pair_count(), 1);
        assert!(idx.are_matched("Superbad", "Superbad (2007)"));
    }

    #[test]
    fn left_only_blocking_keys_stay_out_of_the_intern_table() {
        // A blocking key produced only by a *left* value must resolve
        // through the non-inserting `Sym::lookup` during the probe: it can
        // match nothing (no right value interned it into the block map) and
        // it must not leak into the process-global intern table.
        let marker = "xqleftonlytokenzq";
        assert!(
            Sym::lookup(marker).is_none(),
            "marker token unexpectedly interned by an earlier test"
        );
        let left = syms(&[
            // normalizes to tokens ["xqleftonlytokenzq", "movie"]
            "xqLeftOnlyTokenZq movie",
        ]);
        let right = syms(&["totally different film"]);
        let idx = SimilarityIndex::build(&left, &right, &IndexConfig::default());
        assert!(idx.matches_left("xqLeftOnlyTokenZq movie").is_empty());
        assert!(
            Sym::lookup(marker).is_none(),
            "probe-side blocking key leaked into the intern table"
        );
    }

    #[test]
    fn probes_absent_from_the_intern_table_return_empty_without_interning() {
        let idx = SimilarityIndex::build(&movies_left(), &movies_right(), &IndexConfig::default());
        let probe = "xqneverinternedprobezq";
        assert!(Sym::lookup(probe).is_none());
        assert!(idx.matches_left(probe).is_empty());
        assert!(idx.matches_right(probe).is_empty());
        assert!(idx.best_match_left(probe).is_none());
        assert!(!idx.are_matched(probe, "Superbad (2007)"));
        assert!(!idx.are_matched("Superbad", probe));
        // The probe path is `Sym::lookup`-only: nothing was interned.
        assert!(
            Sym::lookup(probe).is_none(),
            "a read-only probe interned its key"
        );
    }
}
