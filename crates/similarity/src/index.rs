//! Precomputed top-`km` similarity match index.
//!
//! Section 5: *"To improve efficiency, we precompute the pairs of similar
//! values."* and Section 6: the number of top similar matches kept per value
//! is the `km` parameter that Table 4 sweeps over (2, 5, 10).
//!
//! Building the index naively is `O(|L| · |R|)` alignment calls; we use
//! token/trigram blocking: values are only aligned when they share at least
//! one blocking key, which is how record-linkage systems keep this step
//! tractable on large inputs.

use std::collections::HashMap;

use crate::combined::SimilarityOperator;
use crate::tokenize::blocking_keys;

/// A single similarity match.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// The matched value from the *other* column.
    pub value: String,
    /// Combined similarity score in `[0, 1]`.
    pub score: f64,
}

/// Configuration of a [`SimilarityIndex`].
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Keep at most this many matches per value (the paper's `km`).
    pub top_k: usize,
    /// The similarity operator (score + threshold).
    pub operator: SimilarityOperator,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig { top_k: 5, operator: SimilarityOperator::default() }
    }
}

impl IndexConfig {
    /// Config with a given `km` and default operator.
    pub fn top_k(top_k: usize) -> Self {
        IndexConfig { top_k, ..IndexConfig::default() }
    }
}

/// A bidirectional top-`km` similarity match index between two columns of
/// string values (the two sides of a matching dependency).
#[derive(Debug, Clone, Default)]
pub struct SimilarityIndex {
    left_to_right: HashMap<String, Vec<Match>>,
    right_to_left: HashMap<String, Vec<Match>>,
}

impl SimilarityIndex {
    /// Build the index between the distinct values of the left and right
    /// columns.
    pub fn build(left: &[String], right: &[String], config: &IndexConfig) -> Self {
        let left = dedup(left);
        let right = dedup(right);

        // Inverted blocking index over the right column.
        let mut block: HashMap<String, Vec<usize>> = HashMap::new();
        for (j, r) in right.iter().enumerate() {
            for key in blocking_keys(r) {
                block.entry(key).or_default().push(j);
            }
        }

        let mut left_to_right: HashMap<String, Vec<Match>> = HashMap::new();
        let mut right_to_left: HashMap<String, Vec<Match>> = HashMap::new();

        let mut candidates: Vec<usize> = Vec::new();
        let mut seen = vec![false; right.len()];
        for l in &left {
            candidates.clear();
            for key in blocking_keys(l) {
                if let Some(ids) = block.get(&key) {
                    for &j in ids {
                        if !seen[j] {
                            seen[j] = true;
                            candidates.push(j);
                        }
                    }
                }
            }
            let mut matches: Vec<Match> = Vec::new();
            for &j in &candidates {
                seen[j] = false;
                let r = &right[j];
                let score = config.operator.score(l, r);
                if score >= config.operator.threshold {
                    matches.push(Match { value: r.clone(), score });
                }
            }
            matches.sort_by(|a, b| {
                b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.value.cmp(&b.value))
            });
            matches.truncate(config.top_k);
            for m in &matches {
                let back = right_to_left.entry(m.value.clone()).or_default();
                back.push(Match { value: l.clone(), score: m.score });
            }
            if !matches.is_empty() {
                left_to_right.insert(l.clone(), matches);
            }
        }

        // The reverse direction also keeps only the top-k matches per value.
        for matches in right_to_left.values_mut() {
            matches.sort_by(|a, b| {
                b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.value.cmp(&b.value))
            });
            matches.truncate(config.top_k);
        }

        SimilarityIndex { left_to_right, right_to_left }
    }

    /// Matches of a left-column value (empty slice when none).
    pub fn matches_left(&self, value: &str) -> &[Match] {
        self.left_to_right.get(value).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Matches of a right-column value (empty slice when none).
    pub fn matches_right(&self, value: &str) -> &[Match] {
        self.right_to_left.get(value).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The single best match of a left-column value, if any. Used by the
    /// Castor-Clean baseline, which unifies each value with its most similar
    /// counterpart before learning.
    pub fn best_match_left(&self, value: &str) -> Option<&Match> {
        self.matches_left(value).first()
    }

    /// Whether a specific pair of values was matched (in either direction).
    pub fn are_matched(&self, left: &str, right: &str) -> bool {
        self.matches_left(left).iter().any(|m| m.value == right)
            || self.matches_right(left).iter().any(|m| m.value == right)
    }

    /// Number of left-column values that have at least one match.
    pub fn matched_left_count(&self) -> usize {
        self.left_to_right.len()
    }

    /// Total number of stored (left, right) match pairs.
    pub fn pair_count(&self) -> usize {
        self.left_to_right.values().map(|v| v.len()).sum()
    }
}

fn dedup(values: &[String]) -> Vec<String> {
    let mut v: Vec<String> = values.to_vec();
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movies_left() -> Vec<String> {
        vec![
            "Star Wars".to_string(),
            "Superbad".to_string(),
            "Zoolander".to_string(),
            "Totally Unrelated".to_string(),
        ]
    }

    fn movies_right() -> Vec<String> {
        vec![
            "Star Wars: Episode IV - 1977".to_string(),
            "Star Wars: Episode III - 2005".to_string(),
            "Superbad (2007)".to_string(),
            "Zoolander (2001)".to_string(),
            "The Orphanage".to_string(),
        ]
    }

    #[test]
    fn index_finds_expected_matches() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig { top_k: 5, operator: SimilarityOperator::with_threshold(0.6) },
        );
        let superbad = idx.matches_left("Superbad");
        assert!(superbad.iter().any(|m| m.value == "Superbad (2007)"));
        let star_wars = idx.matches_left("Star Wars");
        assert_eq!(star_wars.len(), 2, "Star Wars should match both episodes: {star_wars:?}");
        assert!(idx.matches_left("Totally Unrelated").is_empty());
    }

    #[test]
    fn top_k_limits_matches() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig { top_k: 1, operator: SimilarityOperator::with_threshold(0.6) },
        );
        assert!(idx.matches_left("Star Wars").len() <= 1);
    }

    #[test]
    fn reverse_direction_is_populated() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig { top_k: 5, operator: SimilarityOperator::with_threshold(0.6) },
        );
        let back = idx.matches_right("Superbad (2007)");
        assert!(back.iter().any(|m| m.value == "Superbad"));
        assert!(idx.are_matched("Superbad", "Superbad (2007)"));
    }

    #[test]
    fn matches_are_sorted_by_descending_score() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig { top_k: 5, operator: SimilarityOperator::with_threshold(0.5) },
        );
        for v in movies_left() {
            let ms = idx.matches_left(&v);
            for w in ms.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    }

    #[test]
    fn best_match_left_returns_highest_scoring() {
        let idx = SimilarityIndex::build(
            &movies_left(),
            &movies_right(),
            &IndexConfig { top_k: 5, operator: SimilarityOperator::with_threshold(0.5) },
        );
        let best = idx.best_match_left("Zoolander").unwrap();
        assert_eq!(best.value, "Zoolander (2001)");
    }

    #[test]
    fn empty_inputs_produce_empty_index() {
        let idx = SimilarityIndex::build(&[], &movies_right(), &IndexConfig::default());
        assert_eq!(idx.matched_left_count(), 0);
        assert_eq!(idx.pair_count(), 0);
    }
}
