//! # dlearn-similarity — string similarity operators and match indexes
//!
//! DLearn resolves value heterogeneity with a string-similarity operator: the
//! average of the Smith-Waterman-Gotoh local-alignment similarity and the
//! Length similarity (Section 5 of the paper), and it precomputes, for every
//! value participating in a matching dependency, the top-`km` most similar
//! values on the other side of the dependency.
//!
//! * [`swg_similarity`] — normalized Smith-Waterman-Gotoh score.
//! * [`length_similarity`] — ratio of string lengths.
//! * [`SimilarityOperator`] — the combined operator with a decision threshold.
//! * [`SimilarityIndex`] — blocking-based precomputed top-`km` match index.
//! * [`MaintainedIndex`] — incremental maintenance of a built index under
//!   streaming column deltas, always equal to a fresh build.

#![warn(missing_docs)]

pub mod combined;
pub mod delta;
pub mod index;
pub mod length;
pub mod sw_gotoh;
pub mod sw_kernel;
pub mod tokenize;

pub use combined::{combined_similarity, SimilarityOperator};
pub use delta::{ColumnDelta, DeltaOutcome, MaintainedIndex};
pub use index::{IndexConfig, Match, QuerySym, SimilarityIndex, MAX_AUTO_THREADS};
pub use length::{
    char_histogram, common_char_count, length_similarity, length_similarity_from_counts, HIST_BINS,
};
pub use sw_gotoh::{
    swg_similarity, swg_similarity_normalized_chars, swg_similarity_normalized_chars_at_least,
    swg_similarity_with, SwgParams,
};
pub use sw_kernel::{
    aligned_match_upper_bound, swg_similarity_banded_at_least, SimProfile, MASK_MAX_LEN,
};

#[cfg(test)]
mod proptests {
    //! Property-style tests over seeded random strings (formerly `proptest`
    //! strategies; driven by the vendored deterministic RNG instead).

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use crate::combined::SimilarityOperator;
    use crate::length::length_similarity;
    use crate::sw_gotoh::swg_similarity;

    const CASES: usize = 300;

    /// Random printable-ASCII string of length `0..max_len`.
    fn printable(rng: &mut StdRng, max_len: usize) -> String {
        let len = rng.gen_range(0..max_len + 1);
        (0..len)
            .map(|_| rng.gen_range(0x20u8..0x7f) as char)
            .collect()
    }

    /// Random lowercase alphanumeric string of length `1..=max_len`.
    fn alnum(rng: &mut StdRng, max_len: usize) -> String {
        let alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 ";
        let len = rng.gen_range(1..max_len + 1);
        (0..len)
            .map(|_| alphabet.as_bytes()[rng.gen_range(0..alphabet.len())] as char)
            .collect()
    }

    #[test]
    fn swg_is_bounded_and_symmetric() {
        let mut rng = StdRng::seed_from_u64(0x5179);
        for _ in 0..CASES {
            let a = printable(&mut rng, 24);
            let b = printable(&mut rng, 24);
            let ab = swg_similarity(&a, &b);
            let ba = swg_similarity(&b, &a);
            assert!((0.0..=1.0).contains(&ab), "swg({a:?}, {b:?}) = {ab}");
            assert!((ab - ba).abs() < 1e-9, "asymmetry on ({a:?}, {b:?})");
        }
    }

    #[test]
    fn swg_identity_is_one() {
        let mut rng = StdRng::seed_from_u64(0x1d31);
        for _ in 0..CASES {
            let a = alnum(&mut rng, 24);
            if a.trim().is_empty() {
                continue;
            }
            assert!(
                (swg_similarity(&a, &a) - 1.0).abs() < 1e-9,
                "swg({a:?}, {a:?}) != 1"
            );
        }
    }

    #[test]
    fn length_similarity_bounded() {
        let mut rng = StdRng::seed_from_u64(0x1e57);
        for _ in 0..CASES {
            let a = printable(&mut rng, 32);
            let b = printable(&mut rng, 32);
            let s = length_similarity(&a, &b);
            assert!((0.0..=1.0).contains(&s), "length({a:?}, {b:?}) = {s}");
        }
    }

    #[test]
    fn combined_score_bounded() {
        let mut rng = StdRng::seed_from_u64(0xc0b1);
        let op = SimilarityOperator::default();
        for _ in 0..CASES {
            let a = printable(&mut rng, 24);
            let b = printable(&mut rng, 24);
            let s = op.score(&a, &b);
            assert!((0.0..=1.0).contains(&s), "combined({a:?}, {b:?}) = {s}");
        }
    }
}
