//! # dlearn-similarity — string similarity operators and match indexes
//!
//! DLearn resolves value heterogeneity with a string-similarity operator: the
//! average of the Smith-Waterman-Gotoh local-alignment similarity and the
//! Length similarity (Section 5 of the paper), and it precomputes, for every
//! value participating in a matching dependency, the top-`km` most similar
//! values on the other side of the dependency.
//!
//! * [`swg_similarity`] — normalized Smith-Waterman-Gotoh score.
//! * [`length_similarity`] — ratio of string lengths.
//! * [`SimilarityOperator`] — the combined operator with a decision threshold.
//! * [`SimilarityIndex`] — blocking-based precomputed top-`km` match index.

#![warn(missing_docs)]

pub mod combined;
pub mod index;
pub mod length;
pub mod sw_gotoh;
pub mod tokenize;

pub use combined::{combined_similarity, SimilarityOperator};
pub use index::{IndexConfig, Match, SimilarityIndex};
pub use length::length_similarity;
pub use sw_gotoh::{swg_similarity, swg_similarity_with, SwgParams};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::combined::SimilarityOperator;
    use crate::length::length_similarity;
    use crate::sw_gotoh::swg_similarity;

    proptest! {
        #[test]
        fn swg_is_bounded_and_symmetric(a in "[ -~]{0,24}", b in "[ -~]{0,24}") {
            let ab = swg_similarity(&a, &b);
            let ba = swg_similarity(&b, &a);
            prop_assert!((0.0..=1.0).contains(&ab));
            prop_assert!((ab - ba).abs() < 1e-9);
        }

        #[test]
        fn swg_identity_is_one(a in "[a-z0-9 ]{1,24}") {
            prop_assume!(!a.trim().is_empty());
            prop_assert!((swg_similarity(&a, &a) - 1.0).abs() < 1e-9);
        }

        #[test]
        fn length_similarity_bounded(a in "[ -~]{0,32}", b in "[ -~]{0,32}") {
            let s = length_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn combined_score_bounded(a in "[ -~]{0,24}", b in "[ -~]{0,24}") {
            let op = SimilarityOperator::default();
            let s = op.score(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
