//! Offline, from-scratch shim for the subset of the `rand` 0.8 API used by
//! this workspace. See `vendor/README.md` for why this exists.
//!
//! The generator is SplitMix64: tiny, fast, and statistically fine for the
//! sampling the learners do. Seeding is fully deterministic, which is what
//! the reproducibility story of the repo actually depends on; the stream is
//! *not* byte-compatible with upstream `StdRng`.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            };
            // Scramble once so nearby seeds diverge immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20i64);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be the identity");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
