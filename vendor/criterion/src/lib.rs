//! Offline, from-scratch shim for the subset of the `criterion` 0.5 bench
//! API used by this workspace. See `vendor/README.md` for why this exists.
//!
//! Unlike a mock, this shim really measures: each `bench_function` call runs
//! timed samples of the closure until the configured measurement budget (or
//! sample count) is reached and records the **median** wall-clock time per
//! iteration. Collected results are exposed through
//! [`Criterion::take_results`] so custom-`main` benches can emit
//! machine-readable baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Fully qualified name (`group/function`).
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Number of timed samples behind the median.
    pub samples: usize,
}

/// Identifier for a parameterized benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the bench closure; `iter` runs and times the workload.
pub struct Bencher<'a> {
    settings: &'a Settings,
    result_ns: Option<(f64, usize)>,
}

impl Bencher<'_> {
    /// Measure the closure: one warm-up call, then timed samples until the
    /// measurement budget or the sample target is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let budget = self.settings.measurement_time;
        let target_samples = self.settings.sample_size.max(1);
        let started = Instant::now();
        let mut samples_ns: Vec<f64> = Vec::with_capacity(target_samples);
        loop {
            let t = Instant::now();
            black_box(f());
            samples_ns.push(t.elapsed().as_nanos() as f64);
            if samples_ns.len() >= target_samples || started.elapsed() >= budget {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = samples_ns[samples_ns.len() / 2];
        self.result_ns = Some((median, samples_ns.len()));
    }
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        // Far smaller than upstream criterion's defaults: these benches run
        // in CI with `--no-run` compile checks and locally for baselines, so
        // a short budget per bench keeps `cargo bench` usable.
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let settings = self.settings.clone();
        self.run(name.into(), &settings, f);
        self
    }

    fn run<F>(&mut self, name: String, settings: &Settings, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut bencher = Bencher {
            settings,
            result_ns: None,
        };
        f(&mut bencher);
        let (median_ns, samples) = bencher.result_ns.unwrap_or((0.0, 0));
        eprintln!("bench {name:<48} median {median_ns:>14.1} ns ({samples} samples)");
        self.results.push(BenchResult {
            name,
            median_ns,
            samples,
        });
    }

    /// All results measured so far, draining the internal buffer. Used by
    /// custom-`main` benches to write machine-readable baselines.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    settings: Option<Settings>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings_mut().sample_size = n;
        self
    }

    /// Override the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings_mut().measurement_time = d;
        self
    }

    fn settings_mut(&mut self) -> &mut Settings {
        if self.settings.is_none() {
            self.settings = Some(self.criterion.settings.clone());
        }
        self.settings.as_mut().expect("just initialized")
    }

    fn effective_settings(&self) -> Settings {
        self.settings
            .clone()
            .unwrap_or_else(|| self.criterion.settings.clone())
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<N: Display, F>(&mut self, name: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, name);
        let settings = self.effective_settings();
        self.criterion.run(full, &settings, f);
        self
    }

    /// Run a parameterized benchmark inside this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let settings = self.effective_settings();
        self.criterion.run(full, &settings, |b| f(b, input));
        self
    }

    /// Finish the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Mirror of `criterion::criterion_group!`: defines a function running each
/// bench function against a shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: defines `main` running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        group.bench_function("busy", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].name, "g/busy");
        assert_eq!(results[1].name, "g/param/3");
        assert!(results[0].samples >= 1);
        assert!(results[0].median_ns >= 0.0);
        assert!(c.take_results().is_empty());
    }
}
