#!/usr/bin/env python3
"""Structural check and same-machine regression gate for the bench baseline.

Two modes:

``check_bench_json.py [path]``
    Structural smoke over a committed ``BENCH_subsumption.json``: fail when
    the file is malformed, an expected bench entry is missing, or a
    median/sample count is not a positive number — the situations where the
    baseline silently stops meaning anything. Timing values themselves are
    not compared (they are machine-dependent).

``check_bench_json.py --gate BASELINE.json CURRENT.json``
    Same-machine regression gate: both files must come from bench runs on
    the *same* machine (CI runs the bench at the merge-base and at HEAD on
    one runner, or twice at HEAD when no base is resolvable). Prints a
    per-entry old->new table for every bench present in both runs, then
    fails when the median of a gated bench regresses by more than its
    per-entry tolerance (written next to each median by the bench binary;
    current file wins over baseline, with ``GATE_TOLERANCE`` as the final
    fallback for pre-tolerance baselines). Benches present in only one of
    the two runs are skipped (a new bench has no baseline yet), but at
    least one gated bench must be comparable.
"""

import json
import numbers
import sys

EXPECTED_BENCHES = [
    "subsumption/ground_clause_new",
    "subsumption/subsumes",
    "subsumption/coverage_engine_counts",
    "subsumption/backtracking_heavy",
    "subsumption/backtracking_heavy_static",
    "subsumption/bottom_clause_build",
    "subsumption/index_build",
    "subsumption/predict_loop",
    "subsumption/predict_batch",
    "subsumption/generalization_round",
    "scaling/index_build/vocab/250",
    "scaling/index_build/vocab/500",
    "scaling/index_build/vocab/1000",
    "scaling/index_build/zipf/250",
    "scaling/index_build/zipf/500",
    "scaling/index_build/zipf/1000",
    "scaling/coverage_engine_counts/examples/24",
    "scaling/coverage_engine_counts/examples/48",
    "scaling/coverage_engine_counts/examples/96",
    "scaling/predict_batch/trace/1",
    "scaling/predict_batch/trace/4",
    "scaling/predict_batch/trace/16",
    "service/cold/1",
    "service/cold/2",
    "service/cold/8",
    "service/warm/1",
    "service/warm/2",
    "service/warm/8",
    "delta_apply/small",
    "delta_apply/medium",
    "delta_apply/rebuild",
    "swap/publish",
    "coalesced/1_callers",
    "coalesced/8_callers",
    "coalesced/32_callers",
    "learn/foil_round",
    "learn/tilde_build",
]

EXPECTED_TOP_LEVEL = ["workload", "unit", "benches"]

# Fallback regression tolerance of the same-machine gate, used only when
# neither the current nor the baseline JSON carries a per-entry
# ``tolerance`` field (i.e. a pre-tolerance baseline). The committed
# per-entry values live in the bench binary (`gate_tolerance` in
# `crates/bench/benches/subsumption.rs`) and ride along in the JSON.
GATE_TOLERANCE = 0.20

# The hot-path benches the gate protects. The adversarial backtracking
# benches are deliberately not gated: `backtracking_heavy_static` measures
# an ordering mode nothing ships with, and `backtracking_heavy` is tracked
# through the committed trajectory instead. The scaling curves are also
# ungated — their small sizes are too noisy for a hard gate; curve shape is
# reviewed through the committed diff instead. `generalization_round` and
# the serving pair `predict_loop`/`predict_batch` are gated at widened
# per-entry tolerances (0.30 / 0.25) reflecting their observed variance.
# The `service/{cold,warm}/N` served-throughput curves graduated to the
# gate once their variance was characterised over the committed trajectory;
# they run at the widest per-entry tolerance in the table (0.35) because
# they thread-scale and cache-prime. The `delta_apply/*`, `swap/publish`
# and `coalesced/{1,8,32}_callers` entries followed the same path: they
# landed EXPECTED-but-ungated with their future tolerances already in-JSON
# (0.30 / 0.30 / 0.35), their variance held over the committed trajectory,
# and they are now gated at those tolerances. The newest entries —
# `learn/{foil_round,tilde_build}`, the extension-learner refinement
# searches — start the same way: committed EXPECTED but ungated, tolerance
# (0.30) riding along in the JSON for when they graduate.
GATED_BENCHES = [
    "subsumption/subsumes",
    "subsumption/coverage_engine_counts",
    "subsumption/index_build",
    "subsumption/generalization_round",
    "subsumption/predict_loop",
    "subsumption/predict_batch",
    "service/cold/1",
    "service/cold/2",
    "service/cold/8",
    "service/warm/1",
    "service/warm/2",
    "service/warm/8",
    "delta_apply/small",
    "delta_apply/medium",
    "delta_apply/rebuild",
    "swap/publish",
    "coalesced/1_callers",
    "coalesced/8_callers",
    "coalesced/32_callers",
]


def fail(message: str) -> None:
    print(f"BENCH check FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        fail(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        fail(f"{path} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        fail(f"{path}: top level must be an object")
    benches = data.get("benches")
    if not isinstance(benches, dict):
        fail(f"{path}: 'benches' must be an object")
    return data


def well_formed_median(path: str, benches: dict, name: str) -> float:
    entry = benches.get(name)
    if not isinstance(entry, dict):
        fail(f"{path}: bench entry {name!r} must be an object")
    median = entry.get("median_ns")
    if not isinstance(median, numbers.Real) or isinstance(median, bool) or median <= 0:
        fail(f"{path}: bench entry {name!r}: median_ns must be a positive number, got {median!r}")
    return float(median)


def entry_tolerance(name: str, current: dict, baseline: dict) -> float:
    """Per-entry gate slack: current file wins, then baseline, then default.

    The current-first order means a PR widening a tolerance is judged at the
    widened value in the same run that commits it.
    """
    for benches in (current, baseline):
        entry = benches.get(name)
        if isinstance(entry, dict):
            tolerance = entry.get("tolerance")
            if (
                isinstance(tolerance, numbers.Real)
                and not isinstance(tolerance, bool)
                and 0 < tolerance < 1
            ):
                return float(tolerance)
    return GATE_TOLERANCE


def structural_check(path: str) -> None:
    data = load(path)
    for key in EXPECTED_TOP_LEVEL:
        if key not in data:
            fail(f"missing top-level key {key!r}")
    benches = data["benches"]
    for name in EXPECTED_BENCHES:
        if benches.get(name) is None:
            fail(f"missing bench entry {name!r}")
        well_formed_median(path, benches, name)
        samples = benches[name].get("samples")
        if not isinstance(samples, int) or isinstance(samples, bool) or samples <= 0:
            fail(f"bench entry {name!r}: samples must be a positive integer, got {samples!r}")
        tolerance = benches[name].get("tolerance")
        if (
            not isinstance(tolerance, numbers.Real)
            or isinstance(tolerance, bool)
            or not 0 < tolerance < 1
        ):
            fail(
                f"bench entry {name!r}: tolerance must be a number in (0, 1), "
                f"got {tolerance!r}"
            )

    unexpected = sorted(set(benches) - set(EXPECTED_BENCHES))
    if unexpected:
        # New entries are fine to *add*, but they must be added to this list
        # so later removals are caught; treat unknown names as drift.
        fail(f"unknown bench entries {unexpected}; update scripts/check_bench_json.py")

    print(f"BENCH check OK: {len(EXPECTED_BENCHES)} entries present and well-formed in {path}")


def regression_gate(baseline_path: str, current_path: str) -> None:
    baseline = load(baseline_path)["benches"]
    current = load(current_path)["benches"]
    # Full per-entry old->new table first: every bench present in both runs,
    # gated or not, so a CI log shows the whole picture, not just verdicts.
    common = [name for name in EXPECTED_BENCHES if name in baseline and name in current]
    common += sorted(set(baseline) & set(current) - set(EXPECTED_BENCHES))
    width = max((len(name) for name in common), default=0)
    compared = 0
    regressed = []
    for name in common:
        base = well_formed_median(baseline_path, baseline, name)
        head = well_formed_median(current_path, current, name)
        ratio = head / base
        tolerance = entry_tolerance(name, current, baseline)
        if name not in GATED_BENCHES:
            verdict = "(ungated)"
        elif ratio > 1.0 + tolerance:
            verdict = f"REGRESSED (tol {tolerance:.0%})"
        else:
            verdict = f"ok (tol {tolerance:.0%})"
        print(f"gate: {name:<{width}} {base:>13.0f} ns -> {head:>13.0f} ns (x{ratio:.2f}) {verdict}")
        if name in GATED_BENCHES:
            compared += 1
            if ratio > 1.0 + tolerance:
                regressed.append((name, base, head, ratio, tolerance))
    for name in GATED_BENCHES:
        if name not in common:
            print(f"gate: skipping {name} (not present in both runs)")
    if compared == 0:
        fail("regression gate compared no benches; baseline and current runs share no gated entry")
    if regressed:
        lines = ", ".join(
            f"{name} {base:.0f}->{head:.0f} ns (x{ratio:.2f}, tol {tolerance:.0%})"
            for name, base, head, ratio, tolerance in regressed
        )
        fail(f"median regression beyond per-entry tolerance on the same machine: {lines}")
    print(
        f"BENCH gate OK: {compared} gated benches within their per-entry "
        f"tolerance of the same-machine baseline"
    )


def main() -> None:
    args = sys.argv[1:]
    if args and args[0] == "--gate":
        if len(args) != 3:
            fail("usage: check_bench_json.py --gate BASELINE.json CURRENT.json")
        regression_gate(args[1], args[2])
        return
    path = args[0] if args else "BENCH_subsumption.json"
    structural_check(path)


if __name__ == "__main__":
    main()
