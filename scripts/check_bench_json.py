#!/usr/bin/env python3
"""Structural check for the committed bench baseline.

Non-regression *smoke*, not a perf gate: CI fails when
``BENCH_subsumption.json`` is malformed, an expected bench entry is missing,
or a median/sample count is not a positive number — the situations where the
baseline silently stops meaning anything. Timing values themselves are not
compared (they are machine-dependent).

Usage: check_bench_json.py [path-to-BENCH_subsumption.json]
"""

import json
import numbers
import sys

EXPECTED_BENCHES = [
    "subsumption/ground_clause_new",
    "subsumption/subsumes",
    "subsumption/coverage_engine_counts",
    "subsumption/bottom_clause_build",
    "subsumption/generalization_round",
]

EXPECTED_TOP_LEVEL = ["workload", "unit", "benches"]


def fail(message: str) -> None:
    print(f"BENCH check FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_subsumption.json"
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        fail(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        fail(f"{path} is not valid JSON: {exc}")

    if not isinstance(data, dict):
        fail("top level must be an object")
    for key in EXPECTED_TOP_LEVEL:
        if key not in data:
            fail(f"missing top-level key {key!r}")

    benches = data["benches"]
    if not isinstance(benches, dict):
        fail("'benches' must be an object")

    for name in EXPECTED_BENCHES:
        entry = benches.get(name)
        if entry is None:
            fail(f"missing bench entry {name!r}")
        if not isinstance(entry, dict):
            fail(f"bench entry {name!r} must be an object")
        median = entry.get("median_ns")
        samples = entry.get("samples")
        if not isinstance(median, numbers.Real) or isinstance(median, bool) or median <= 0:
            fail(f"bench entry {name!r}: median_ns must be a positive number, got {median!r}")
        if not isinstance(samples, int) or isinstance(samples, bool) or samples <= 0:
            fail(f"bench entry {name!r}: samples must be a positive integer, got {samples!r}")

    unexpected = sorted(set(benches) - set(EXPECTED_BENCHES))
    if unexpected:
        # New entries are fine to *add*, but they must be added to this list
        # so later removals are caught; treat unknown names as drift.
        fail(f"unknown bench entries {unexpected}; update scripts/check_bench_json.py")

    print(f"BENCH check OK: {len(EXPECTED_BENCHES)} entries present and well-formed in {path}")


if __name__ == "__main__":
    main()
