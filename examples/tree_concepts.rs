//! Tree-shaped concept scenario: clausal covering vs FOIL vs TILDE.
//!
//! The `premiumAccounts` target is a disjunction of six region-specific
//! segments (`region = north ∧ tier = gold`, `region = east ∧ channel = web`,
//! ...). A clausal covering learner needs one clause per segment, so the
//! default clause budget of four caps its recall at 4/6 — while TILDE's
//! first-order decision tree branches per region without spending a clause
//! budget and recovers every segment. Run with:
//! `cargo run --release --example tree_concepts`

use dlearn::core::{Engine, LearnerConfig, Strategy};
use dlearn::datagen::{generate_segment_dataset, SegmentConfig};
use dlearn::eval::Confusion;

fn main() -> Result<(), dlearn::core::DlearnError> {
    let dataset = generate_segment_dataset(&SegmentConfig::small(), 91);
    let fold = dataset.train_test_split(0.7, 1);
    println!(
        "dataset: {} ({} tuples)\n",
        dataset.name,
        dataset.task.database.total_tuples()
    );

    let config = LearnerConfig::fast().with_iterations(2);
    let engine = Engine::prepare(fold.train.clone(), config)?;

    println!(
        "{:<18} {:>6} {:>10} {:>8} {:>8}",
        "system", "F1", "precision", "recall", "clauses"
    );
    let mut definitions = Vec::new();
    for strategy in Strategy::ALL {
        let learned = engine.learn(strategy)?;
        let predictor = engine.predictor(&learned).expect("bind predictor");
        let confusion = Confusion::from_predictions(
            &predictor.predict_batch(&fold.test_positives)?,
            &predictor.predict_batch(&fold.test_negatives)?,
        );
        println!(
            "{:<18} {:>6.2} {:>10.2} {:>8.2} {:>8}",
            strategy.name(),
            confusion.f1(),
            confusion.precision(),
            confusion.recall(),
            learned.definition().len()
        );
        definitions.push((strategy, learned));
    }

    // Show what the clausal budget costs and what the tree recovers.
    for (strategy, learned) in &definitions {
        if matches!(strategy, Strategy::DLearn | Strategy::Tilde) {
            println!("\n{} learned:\n{}", strategy.name(), learned.render());
        }
    }
    Ok(())
}
