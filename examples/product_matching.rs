//! Product matching scenario (the paper's Walmart+Amazon workload): the UPC
//! lives in one source and the product category in the other, and product
//! names differ across sources. The learned definition must cross the title
//! matching dependency to find "Computers Accessories" products.
//!
//! Run with: `cargo run --release --example product_matching`

use dlearn::core::{Engine, LearnerConfig, Strategy};
use dlearn::datagen::products::{generate_product_dataset, ProductConfig};
use dlearn::eval::Confusion;

fn main() -> Result<(), dlearn::core::DlearnError> {
    let dataset = generate_product_dataset(&ProductConfig::small(), 5);
    let fold = dataset.train_test_split(0.7, 3);
    println!(
        "dataset: {} ({} tuples)",
        dataset.name,
        dataset.task.database.total_tuples()
    );

    // The Walmart+Amazon chain (upc -> pid -> title ≈ title -> aid ->
    // category) is the longest of the three workloads, so use a deeper walk.
    let config = LearnerConfig::fast().with_iterations(5).with_km(2);
    let engine = Engine::prepare(fold.train.clone(), config)?;
    let learned = engine.learn(Strategy::DLearn)?;

    println!("\nlearned definition:\n{}\n", learned.render());

    let predictor = engine.predictor(&learned).expect("bind predictor");
    let confusion = Confusion::from_predictions(
        &predictor.predict_batch(&fold.test_positives)?,
        &predictor.predict_batch(&fold.test_negatives)?,
    );
    println!(
        "held-out F1 = {:.2} (precision {:.2}, recall {:.2})",
        confusion.f1(),
        confusion.precision(),
        confusion.recall()
    );
    Ok(())
}
