//! Quickstart: prepare an engine session over a dirty, two-source movie
//! database, learn a definition for the target relation — no cleaning
//! step — and serve predictions from the prepared session.
//!
//! Run with: `cargo run --release --example quickstart`

use dlearn::core::{Engine, LearnerConfig, Strategy};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};

fn main() -> Result<(), dlearn::core::DlearnError> {
    // A synthetic IMDB+OMDB-style database: titles are spelled differently
    // across the two sources, so only the title matching dependency can
    // connect a movie to its rating.
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 7);
    println!("dataset: {}", dataset.name);
    println!("database: {}", dataset.task.database.summary());
    println!(
        "examples: {} positive / {} negative\n",
        dataset.task.positives.len(),
        dataset.task.negatives.len()
    );

    // Prepare the session once: the task is validated and the expensive
    // per-database artifacts (similarity index, ground bottom clauses) are
    // built here, shared by every learn/predict call below.
    let engine = Engine::prepare(dataset.task.clone(), LearnerConfig::fast())?;

    // Learn directly over the dirty database.
    let learned = engine.learn(Strategy::DLearn)?;
    println!("learned definition ({} clauses):", learned.clauses().len());
    println!("{}\n", learned.render());

    // Bind the definition for serving and apply it to the training
    // examples in one parallel batch.
    let predictor = engine.predictor(&learned).expect("bind predictor");
    let covered_positives = predictor
        .predict_batch(&dataset.task.positives)?
        .iter()
        .filter(|&&b| b)
        .count();
    let covered_negatives = predictor
        .predict_batch(&dataset.task.negatives)?
        .iter()
        .filter(|&&b| b)
        .count();
    println!(
        "training coverage: {covered_positives}/{} positives, {covered_negatives}/{} negatives",
        dataset.task.positives.len(),
        dataset.task.negatives.len()
    );
    Ok(())
}
