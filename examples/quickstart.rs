//! Quickstart: learn a definition for a target relation directly over a
//! dirty, two-source movie database — no cleaning step.
//!
//! Run with: `cargo run --release --example quickstart`

use dlearn::core::{DLearn, LearnerConfig};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};

fn main() {
    // A synthetic IMDB+OMDB-style database: titles are spelled differently
    // across the two sources, so only the title matching dependency can
    // connect a movie to its rating.
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 7);
    println!("dataset: {}", dataset.name);
    println!("database: {}", dataset.task.database.summary());
    println!(
        "examples: {} positive / {} negative\n",
        dataset.task.positives.len(),
        dataset.task.negatives.len()
    );

    // Learn directly over the dirty database.
    let mut learner = DLearn::new(LearnerConfig::fast());
    let model = learner.learn(&dataset.task);

    println!("learned definition ({} clauses):", model.clauses().len());
    println!("{}\n", model.render());

    // Apply the model to the training examples to show how it is used.
    let covered_positives = dataset
        .task
        .positives
        .iter()
        .filter(|e| model.predict(e))
        .count();
    let covered_negatives = dataset
        .task
        .negatives
        .iter()
        .filter(|e| model.predict(e))
        .count();
    println!(
        "training coverage: {covered_positives}/{} positives, {covered_negatives}/{} negatives",
        dataset.task.positives.len(),
        dataset.task.negatives.len()
    );
}
