//! Learning over all possible repairs vs learning over one repaired database
//! (the paper's Table 5 comparison), on the citation dataset with injected
//! CFD violations.
//!
//! Run with: `cargo run --release --example dirty_vs_repaired`

use dlearn::core::{Learner, LearnerConfig, Strategy};
use dlearn::datagen::citations::{generate_citation_dataset, CitationConfig};
use dlearn::eval::Confusion;

fn main() {
    println!("{:<18} {:>6} {:>8} {:>10}", "system", "p", "F1", "time(s)");
    for p in [0.05, 0.10, 0.20] {
        let dataset =
            generate_citation_dataset(&CitationConfig::small().with_violation_rate(p), 13);
        let fold = dataset.train_test_split(0.7, 2);
        for (name, strategy) in [
            ("DLearn-CFD", Strategy::DLearn),
            ("DLearn-Repaired", Strategy::DLearnRepaired),
        ] {
            let learner = Learner::new(strategy, LearnerConfig::fast().with_iterations(3));
            let outcome = learner.learn(&fold.train);
            let confusion = Confusion::from_predictions(
                &outcome.model.predict_all(&fold.test_positives),
                &outcome.model.predict_all(&fold.test_negatives),
            );
            println!(
                "{:<18} {:>6.2} {:>8.2} {:>10.2}",
                name,
                p,
                confusion.f1(),
                outcome.seconds
            );
        }
    }
}
