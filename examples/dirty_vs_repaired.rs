//! Learning over all possible repairs vs learning over one repaired database
//! (the paper's Table 5 comparison), on the citation dataset with injected
//! CFD violations.
//!
//! Both systems share one prepared engine session per violation rate —
//! DLearn-Repaired reuses the session's similarity index because the CFD
//! repairs cannot rewrite an MD-identified column on this schema.
//!
//! Run with: `cargo run --release --example dirty_vs_repaired`

use dlearn::core::{Engine, LearnerConfig, Strategy};
use dlearn::datagen::citations::{generate_citation_dataset, CitationConfig};
use dlearn::eval::Confusion;

fn main() -> Result<(), dlearn::core::DlearnError> {
    println!("{:<18} {:>6} {:>8} {:>10}", "system", "p", "F1", "time(s)");
    for p in [0.05, 0.10, 0.20] {
        let dataset =
            generate_citation_dataset(&CitationConfig::small().with_violation_rate(p), 13);
        let fold = dataset.train_test_split(0.7, 2);
        let engine = Engine::prepare(fold.train.clone(), LearnerConfig::fast().with_iterations(3))?;
        for (name, strategy) in [
            ("DLearn-CFD", Strategy::DLearn),
            ("DLearn-Repaired", Strategy::DLearnRepaired),
        ] {
            let learned = engine.learn(strategy)?;
            let predictor = engine.predictor(&learned).expect("bind predictor");
            let confusion = Confusion::from_predictions(
                &predictor.predict_batch(&fold.test_positives)?,
                &predictor.predict_batch(&fold.test_negatives)?,
            );
            println!(
                "{:<18} {:>6.2} {:>8.2} {:>10.2}",
                name,
                p,
                confusion.f1(),
                learned.seconds()
            );
        }
    }
    Ok(())
}
