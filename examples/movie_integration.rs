//! Movie integration scenario (the paper's IMDB+OMDB workload): compare
//! DLearn against the Castor-style baselines on a database whose movie titles
//! are spelled differently in the two sources.
//!
//! All systems run against **one prepared engine session**, so the title
//! similarity index is built once, not once per system. This is a single-run
//! miniature of Table 4. Run with:
//! `cargo run --release --example movie_integration`

use dlearn::core::{Engine, LearnerConfig, Strategy};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::eval::Confusion;

fn main() -> Result<(), dlearn::core::DlearnError> {
    let dataset = generate_movie_dataset(&MovieConfig::small().with_three_mds(), 42);
    let fold = dataset.train_test_split(0.7, 1);
    println!(
        "dataset: {} ({} tuples)\n",
        dataset.name,
        dataset.task.database.total_tuples()
    );

    let config = LearnerConfig::fast().with_iterations(4).with_km(2);
    let engine = Engine::prepare(fold.train.clone(), config)?;

    println!(
        "{:<18} {:>6} {:>10} {:>10} {:>10}",
        "system", "F1", "precision", "recall", "time(s)"
    );
    for strategy in Strategy::all() {
        if strategy == Strategy::DLearnRepaired {
            continue; // no CFD violations in this scenario
        }
        let learned = engine.learn(strategy)?;
        let predictor = engine.predictor(&learned).expect("bind predictor");
        let confusion = Confusion::from_predictions(
            &predictor.predict_batch(&fold.test_positives)?,
            &predictor.predict_batch(&fold.test_negatives)?,
        );
        println!(
            "{:<18} {:>6.2} {:>10.2} {:>10.2} {:>10.2}",
            strategy.name(),
            confusion.f1(),
            confusion.precision(),
            confusion.recall(),
            learned.seconds()
        );
    }
    Ok(())
}
