//! Movie integration scenario (the paper's IMDB+OMDB workload): compare
//! DLearn against the Castor-style baselines on a database whose movie titles
//! are spelled differently in the two sources.
//!
//! This is a single-run miniature of Table 4. Run with:
//! `cargo run --release --example movie_integration`

use dlearn::core::{Learner, LearnerConfig, Strategy};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::eval::Confusion;

fn main() {
    let dataset = generate_movie_dataset(&MovieConfig::small().with_three_mds(), 42);
    let fold = dataset.train_test_split(0.7, 1);
    println!(
        "dataset: {} ({} tuples)\n",
        dataset.name,
        dataset.task.database.total_tuples()
    );

    println!(
        "{:<18} {:>6} {:>10} {:>10} {:>10}",
        "system", "F1", "precision", "recall", "time(s)"
    );
    for strategy in Strategy::all() {
        if strategy == Strategy::DLearnRepaired {
            continue; // no CFD violations in this scenario
        }
        let config = LearnerConfig::fast().with_iterations(4).with_km(2);
        let learner = Learner::new(strategy, config);
        let outcome = learner.learn(&fold.train);
        let confusion = Confusion::from_predictions(
            &outcome.model.predict_all(&fold.test_positives),
            &outcome.model.predict_all(&fold.test_negatives),
        );
        println!(
            "{:<18} {:>6.2} {:>10.2} {:>10.2} {:>10.2}",
            strategy.name(),
            confusion.f1(),
            confusion.precision(),
            confusion.recall(),
            outcome.seconds
        );
    }
}
