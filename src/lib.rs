//! # DLearn — learning over dirty data without cleaning
//!
//! This is the umbrella crate of the DLearn reproduction. It re-exports every
//! sub-crate of the workspace under a single, convenient namespace so that
//! examples, integration tests, and downstream users can depend on one crate.
//!
//! The library reproduces the system described in *Learning Over Dirty Data
//! Without Cleaning* (Picado, Davis, Termehchy, Lee — SIGMOD 2020): a
//! bottom-up relational learner that learns Horn-clause definitions of a
//! target relation directly over an inconsistent, heterogeneous database by
//! encoding the space of possible repairs (induced by matching dependencies
//! and conditional functional dependencies) inside the learned clauses.
//!
//! ## Crate map
//!
//! * [`relstore`] — in-memory relational database substrate (schemas, typed
//!   values, relations, indexes, selection).
//! * [`similarity`] — string similarity operators (Smith-Waterman-Gotoh +
//!   length) and the precomputed top-`km` similarity index.
//! * [`logic`] — first-order logic machinery: terms, literals, Horn clauses,
//!   θ-subsumption with repair literals.
//! * [`constraints`] — matching dependencies, conditional functional
//!   dependencies, violation detection, and database repairs.
//! * [`core`] — the prepared-session [`core::Engine`] running the DLearn
//!   learner and the Castor-style baselines, plus the serving-side
//!   [`core::Predictor`].
//! * [`datagen`] — synthetic dirty-data generators emulating the paper's
//!   three integrated dataset pairs.
//! * [`eval`] — metrics, cross-validation, and the experiment runner that
//!   regenerates every table and figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use dlearn::datagen::movies::{MovieConfig, generate_movie_dataset};
//! use dlearn::core::{Engine, LearnerConfig, Strategy};
//!
//! // Generate a small synthetic dirty movie database (IMDB+OMDB style).
//! let cfg = MovieConfig::tiny();
//! let dataset = generate_movie_dataset(&cfg, 7);
//!
//! // Prepare a session once (validates the task, builds the similarity
//! // index and ground examples), then learn directly over the dirty data.
//! let engine = Engine::prepare(dataset.task.clone(), LearnerConfig::fast())?;
//! let learned = engine.learn(Strategy::DLearn)?;
//! println!("{}", learned.render());
//! assert!(learned.clauses().len() <= 4);
//!
//! // Bind the definition for serving and predict a batch in parallel.
//! let predictor = engine.predictor(&learned)?;
//! let verdicts = predictor.predict_batch(&dataset.task.positives)?;
//! assert_eq!(verdicts.len(), dataset.task.positives.len());
//! # Ok::<(), dlearn::core::DlearnError>(())
//! ```

pub use dlearn_constraints as constraints;
pub use dlearn_core as core;
pub use dlearn_datagen as datagen;
pub use dlearn_eval as eval;
pub use dlearn_logic as logic;
pub use dlearn_relstore as relstore;
pub use dlearn_similarity as similarity;
